"""Core weighted undirected graph container.

:class:`Graph` is the object every algorithm in this library operates on.
It stores a *canonical edge list* — endpoints ``(u, v)`` with ``u < v``,
lexicographically sorted, parallel edges merged by summing weights — plus
lazily built CSR adjacency.  The canonical form makes edge identity
well-defined, which the sparsification pipeline relies on: a sparsifier is
represented as the original graph plus a boolean *edge mask*.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_vertex_count

__all__ = ["Graph"]


def _canonicalize_edges(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return sorted, deduplicated, self-loop-free edge arrays.

    Endpoints are swapped so ``u < v``, self loops are dropped, edges are
    sorted by ``(u, v)`` and parallel edges merged by summing weights.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    w = np.asarray(w, dtype=np.float64).ravel()
    if not (u.shape == v.shape == w.shape):
        raise ValueError(
            f"edge arrays must have equal length, got {u.shape}, {v.shape}, {w.shape}"
        )
    if u.size:
        if u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n:
            raise ValueError("edge endpoint out of range [0, n)")
        if not np.all(np.isfinite(w)):
            raise ValueError("edge weights must be finite")
        if np.any(w <= 0):
            raise ValueError("edge weights must be strictly positive")
    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    # Sort lexicographically by (lo, hi); merge duplicates.
    key = lo * np.int64(n) + hi
    order = np.argsort(key, kind="stable")
    key, lo, hi, w = key[order], lo[order], hi[order], w[order]
    if key.size:
        unique_mask = np.empty(key.size, dtype=bool)
        unique_mask[0] = True
        np.not_equal(key[1:], key[:-1], out=unique_mask[1:])
        group = np.cumsum(unique_mask) - 1
        merged_w = np.zeros(int(group[-1]) + 1, dtype=np.float64)
        np.add.at(merged_w, group, w)
        lo, hi, w = lo[unique_mask], hi[unique_mask], merged_w
    return lo, hi, w


class Graph:
    """Weighted undirected graph with a canonical edge list.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are labelled ``0 .. n-1``.
    u, v, w:
        Edge endpoint and positive-weight arrays (any orientation and
        order; duplicates are merged, self loops dropped).

    Notes
    -----
    Instances are treated as immutable: mutating operations return new
    graphs.  The adjacency matrix and weighted degrees are cached on
    first use.
    """

    __slots__ = ("n", "u", "v", "w", "_adjacency", "_degrees", "_edge_key_sorted")

    def __init__(
        self,
        num_vertices: int,
        u: Iterable[int] | np.ndarray = (),
        v: Iterable[int] | np.ndarray = (),
        w: Iterable[float] | np.ndarray | None = None,
    ) -> None:
        self.n = check_vertex_count(num_vertices)
        u = np.asarray(list(u) if not isinstance(u, np.ndarray) else u, dtype=np.int64)
        v = np.asarray(list(v) if not isinstance(v, np.ndarray) else v, dtype=np.int64)
        if w is None:
            w = np.ones(u.size, dtype=np.float64)
        w = np.asarray(list(w) if not isinstance(w, np.ndarray) else w, dtype=np.float64)
        self.u, self.v, self.w = _canonicalize_edges(self.n, u, v, w)
        self._adjacency: sp.csr_matrix | None = None
        self._degrees: np.ndarray | None = None
        self._edge_key_sorted: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Iterable[float] | np.ndarray | None = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError(f"edges must be an (m, 2) array, got shape {edge_arr.shape}")
        return cls(num_vertices, edge_arr[:, 0], edge_arr[:, 1], weights)

    @classmethod
    def from_sparse(cls, adjacency: sp.spmatrix) -> "Graph":
        """Build a graph from a (symmetric, non-negative) adjacency matrix.

        Both triangles are read and merged on canonical ``(min, max)``
        endpoint pairs, so a symmetric matrix, either of its triangles, or
        any mix of the two produce the same graph.  An edge stored in both
        triangles must carry the same weight in each — conflicting
        asymmetric weights raise.  Zero entries are dropped; negative
        entries raise (via the positive-weight check).
        """
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got {adjacency.shape}")
        n = adjacency.shape[0]
        coo = adjacency.tocoo()
        lower = sp.tril(coo, k=-1).tocoo()
        upper = sp.triu(coo, k=1).tocoo()

        def _merged(triangle: sp.coo_matrix) -> tuple[np.ndarray, np.ndarray]:
            """Canonical keys and duplicate-summed weights of one triangle."""
            keep = triangle.data != 0
            lo = np.minimum(triangle.row[keep], triangle.col[keep]).astype(np.int64)
            hi = np.maximum(triangle.row[keep], triangle.col[keep]).astype(np.int64)
            keys = lo * np.int64(n) + hi
            uniq, inverse = np.unique(keys, return_inverse=True)
            weights = np.zeros(uniq.size, dtype=np.float64)
            np.add.at(weights, inverse, triangle.data[keep])
            return uniq, weights

        lo_keys, lo_w = _merged(lower)
        up_keys, up_w = _merged(upper)
        # Entries present in both triangles must agree; keep one copy.
        both = np.intersect1d(lo_keys, up_keys, assume_unique=True)
        if both.size:
            wl = lo_w[np.searchsorted(lo_keys, both)]
            wu = up_w[np.searchsorted(up_keys, both)]
            if not np.allclose(wl, wu, rtol=1e-9, atol=0.0):
                raise ValueError(
                    "adjacency is asymmetric: upper- and lower-triangle "
                    "weights disagree"
                )
        only_upper = np.setdiff1d(up_keys, lo_keys, assume_unique=True)
        extra_w = up_w[np.searchsorted(up_keys, only_upper)]
        keys = np.concatenate([lo_keys, only_upper])
        w = np.concatenate([lo_w, extra_w])
        return cls(n, keys // np.int64(n), keys % np.int64(n), w)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of (canonical) edges ``|E|``."""
        return int(self.u.size)

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.w.sum())

    @property
    def density(self) -> float:
        """Edges per vertex, the ``|E|/|V|`` figure the paper tabulates."""
        return self.num_edges / self.n

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
            and np.allclose(self.w, other.w, rtol=1e-12, atol=0.0)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash for caching
        return id(self)

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric weighted adjacency matrix in CSR form (cached)."""
        if self._adjacency is None:
            rows = np.concatenate([self.u, self.v])
            cols = np.concatenate([self.v, self.u])
            vals = np.concatenate([self.w, self.w])
            self._adjacency = sp.csr_matrix(
                (vals, (rows, cols)), shape=(self.n, self.n)
            )
        return self._adjacency

    def laplacian(self) -> sp.csr_matrix:
        """Graph Laplacian ``L = D - A`` per Eq. (1) of the paper."""
        adj = self.adjacency()
        lap = sp.diags(self.weighted_degrees()) - adj
        return lap.tocsr()

    def incidence(self) -> sp.csr_matrix:
        """Signed edge-vertex incidence matrix ``B`` of shape ``(m, n)``.

        Row ``e`` for edge ``(u, v)`` has ``+1`` at ``u`` and ``-1`` at
        ``v``, so ``L = Bᵀ W B`` with ``W = diag(w)``.
        """
        m = self.num_edges
        rows = np.repeat(np.arange(m, dtype=np.int64), 2)
        cols = np.column_stack([self.u, self.v]).ravel()
        vals = np.tile(np.array([1.0, -1.0]), m)
        return sp.csr_matrix((vals, (rows, cols)), shape=(m, self.n))

    def weighted_degrees(self) -> np.ndarray:
        """Weighted degree of every vertex (cached)."""
        if self._degrees is None:
            deg = np.zeros(self.n, dtype=np.float64)
            np.add.at(deg, self.u, self.w)
            np.add.at(deg, self.v, self.w)
            self._degrees = deg
        return self._degrees

    def unweighted_degrees(self) -> np.ndarray:
        """Number of incident edges per vertex."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.u, 1)
        np.add.at(deg, self.v, 1)
        return deg

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------
    def edge_keys(self) -> np.ndarray:
        """Canonical scalar key ``u * n + v`` per edge (sorted ascending)."""
        if self._edge_key_sorted is None:
            self._edge_key_sorted = self.u * np.int64(self.n) + self.v
        return self._edge_key_sorted

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized membership test for endpoint pairs."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keys = lo * np.int64(self.n) + hi
        idx = np.searchsorted(self.edge_keys(), keys)
        idx = np.clip(idx, 0, max(self.num_edges - 1, 0))
        if self.num_edges == 0:
            return np.zeros(keys.shape, dtype=bool)
        return self.edge_keys()[idx] == keys

    def edge_indices(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Canonical edge index of each pair; -1 when the edge is absent."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keys = lo * np.int64(self.n) + hi
        if self.num_edges == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        idx = np.searchsorted(self.edge_keys(), keys)
        idx = np.clip(idx, 0, self.num_edges - 1)
        found = self.edge_keys()[idx] == keys
        return np.where(found, idx, -1)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted neighbor array of ``vertex`` (via CSR adjacency)."""
        adj = self.adjacency()
        return adj.indices[adj.indptr[vertex] : adj.indptr[vertex + 1]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def edge_subgraph(self, mask_or_indices: np.ndarray) -> "Graph":
        """Graph on the same vertex set keeping only the selected edges."""
        sel = np.asarray(mask_or_indices)
        if sel.dtype == bool:
            if sel.size != self.num_edges:
                raise ValueError(
                    f"mask length {sel.size} != num_edges {self.num_edges}"
                )
            idx = np.flatnonzero(sel)
        else:
            idx = sel.astype(np.int64)
        return Graph(self.n, self.u[idx], self.v[idx], self.w[idx])

    def with_edges(
        self, u: np.ndarray, v: np.ndarray, w: np.ndarray | None = None
    ) -> "Graph":
        """New graph with extra edges merged in (weights of duplicates add)."""
        u = np.asarray(u, dtype=np.int64)
        if w is None:
            w = np.ones(u.size, dtype=np.float64)
        return Graph(
            self.n,
            np.concatenate([self.u, u]),
            np.concatenate([self.v, np.asarray(v, dtype=np.int64)]),
            np.concatenate([self.w, np.asarray(w, dtype=np.float64)]),
        )

    def reweighted(self, new_weights: np.ndarray) -> "Graph":
        """Same topology with new positive edge weights."""
        new_weights = np.asarray(new_weights, dtype=np.float64)
        if new_weights.shape != self.w.shape:
            raise ValueError(
                f"expected {self.w.shape[0]} weights, got {new_weights.shape}"
            )
        return Graph(self.n, self.u, self.v, new_weights)

    def copy(self) -> "Graph":
        """Independent copy (arrays are copied)."""
        return Graph(self.n, self.u.copy(), self.v.copy(), self.w.copy())
