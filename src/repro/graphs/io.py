"""Graph and matrix I/O.

The paper's test cases come from the SuiteSparse (UFL) collection in
Matrix Market format; this module implements a self-contained Matrix
Market coordinate reader/writer (symmetric/general, real/pattern) so the
library can ingest the same files when they are available, plus simple
edge-list and NumPy archive formats for our synthetic workloads.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.graphs.laplacian import graph_from_matrix

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "load_graph_matrix_market",
    "read_edge_list",
    "write_edge_list",
    "save_graph_npz",
    "load_graph_npz",
]


def read_matrix_market(path: str | Path | _io.TextIOBase) -> sp.coo_matrix:
    """Parse a Matrix Market coordinate file into a COO matrix.

    Supports ``matrix coordinate real|integer|pattern general|symmetric``
    headers — the subset the SuiteSparse Laplacian-adjacent collections
    use.  Symmetric storage is expanded to both triangles; pattern files
    get unit values (the paper's unit-weight rule).
    """
    close = False
    if isinstance(path, (str, Path)):
        handle = open(path, "r", encoding="utf-8")
        close = True
    else:
        handle = path
    try:
        header = handle.readline().strip().lower().split()
        if len(header) < 5 or header[0] != "%%matrixmarket" or header[1] != "matrix":
            raise ValueError("not a MatrixMarket matrix file")
        layout, field, symmetry = header[2], header[3], header[4]
        if layout != "coordinate":
            raise ValueError(f"only coordinate layout supported, got {layout!r}")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        nrows, ncols, nnz = int(dims[0]), int(dims[1]), int(dims[2])
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = handle.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            if field != "pattern":
                vals[k] = float(parts[2])
    finally:
        if close:
            handle.close()
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if symmetry == "symmetric":
        off = rows != cols
        matrix = sp.coo_matrix(
            (
                np.concatenate([vals, vals[off]]),
                (
                    np.concatenate([rows, cols[off]]),
                    np.concatenate([cols, rows[off]]),
                ),
            ),
            shape=(nrows, ncols),
        )
    elif symmetry == "skew-symmetric":
        off = rows != cols
        matrix = sp.coo_matrix(
            (
                np.concatenate([vals, -vals[off]]),
                (
                    np.concatenate([rows, cols[off]]),
                    np.concatenate([cols, rows[off]]),
                ),
            ),
            shape=(nrows, ncols),
        )
    return matrix


def write_matrix_market(
    path: str | Path | _io.TextIOBase,
    matrix: sp.spmatrix,
    symmetric: bool = True,
    comment: str | None = None,
) -> None:
    """Write a sparse matrix in Matrix Market coordinate format."""
    close = False
    if isinstance(path, (str, Path)):
        handle = open(path, "w", encoding="utf-8")
        close = True
    else:
        handle = path
    try:
        coo = matrix.tocoo()
        if symmetric:
            keep = coo.row >= coo.col
            rows, cols, vals = coo.row[keep], coo.col[keep], coo.data[keep]
            sym = "symmetric"
        else:
            rows, cols, vals = coo.row, coo.col, coo.data
            sym = "general"
        handle.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        if comment:
            for line in comment.splitlines():
                handle.write(f"% {line}\n")
        handle.write(f"{coo.shape[0]} {coo.shape[1]} {rows.size}\n")
        for r, c, val in zip(rows, cols, vals):
            handle.write(f"{r + 1} {c + 1} {float(val)!r}\n")
    finally:
        if close:
            handle.close()


def load_graph_matrix_market(path: str | Path) -> Graph:
    """Read a Matrix Market file and apply the paper's graph conversion.

    Any symmetric sparse matrix becomes a weighted graph via
    :func:`repro.graphs.laplacian.graph_from_matrix` (absolute values of
    strictly-lower-triangular entries; unit weights for pattern files).
    """
    return graph_from_matrix(read_matrix_market(path).tocsr())


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> Graph:
    """Read a whitespace ``u v [w]`` edge list (0-based labels).

    When ``num_vertices`` is omitted, a ``# vertices N ...`` header
    comment (the form :func:`write_edge_list` emits) fixes the vertex
    count; otherwise it falls back to ``max label + 1``.  The header
    keeps trailing isolated vertices — which no edge line can mention —
    from being silently dropped on a round trip.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    header_vertices: int | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if (
                    header_vertices is None
                    and len(parts) >= 2
                    and parts[0] == "vertices"
                    and parts[1].isdigit()
                ):
                    header_vertices = int(parts[1])
                continue
            parts = line.split()
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) > 2 else 1.0)
    if num_vertices is None:
        num_vertices = header_vertices
    if num_vertices is None:
        num_vertices = (max(max(us, default=-1), max(vs, default=-1)) + 1) or 1
    return Graph(num_vertices, np.array(us), np.array(vs), np.array(ws))


def write_edge_list(path: str | Path, graph: Graph) -> None:
    """Write the canonical edge list as ``u v w`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# vertices {graph.n} edges {graph.num_edges}\n")
        for u, v, w in zip(graph.u, graph.v, graph.w):
            handle.write(f"{u} {v} {float(w)!r}\n")


def save_graph_npz(path: str | Path, graph: Graph) -> None:
    """Save a graph as a compressed NumPy archive."""
    np.savez_compressed(
        path, n=np.int64(graph.n), u=graph.u, v=graph.v, w=graph.w
    )


def load_graph_npz(path: str | Path) -> Graph:
    """Load a graph saved by :func:`save_graph_npz`."""
    with np.load(path) as data:
        return Graph(int(data["n"]), data["u"], data["v"], data["w"])
