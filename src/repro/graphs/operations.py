"""Structural graph operations: subgraphs, unions, contraction, relabeling.

The AKPW low-stretch tree builds a hierarchy of *contracted* graphs and
the experiment generators compose graphs from pieces; both live on the
operations here.  Everything returns new :class:`Graph` objects.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "induced_subgraph",
    "union",
    "contract",
    "relabel",
    "remove_edges",
    "disjoint_union",
    "degree_statistics",
]


def induced_subgraph(graph: Graph, vertices: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Subgraph induced on ``vertices`` plus the old-label array.

    Returns ``(subgraph, vertices)`` where subgraph vertex ``i``
    corresponds to original vertex ``vertices[i]``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size and (vertices[0] < 0 or vertices[-1] >= graph.n):
        raise ValueError("vertex label out of range")
    remap = -np.ones(graph.n, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size)
    mask = (remap[graph.u] >= 0) & (remap[graph.v] >= 0)
    sub = Graph(
        max(int(vertices.size), 1),
        remap[graph.u[mask]],
        remap[graph.v[mask]],
        graph.w[mask],
    )
    return sub, vertices


def union(a: Graph, b: Graph) -> Graph:
    """Edge-wise union of two graphs on the same vertex set.

    Weights of edges present in both graphs are summed (consistent with
    parallel-edge merging in the canonical form).
    """
    if a.n != b.n:
        raise ValueError(f"vertex counts differ: {a.n} vs {b.n}")
    return a.with_edges(b.u, b.v, b.w)


def disjoint_union(a: Graph, b: Graph) -> Graph:
    """Graph on ``a.n + b.n`` vertices containing both edge sets side by side."""
    return Graph(
        a.n + b.n,
        np.concatenate([a.u, b.u + a.n]),
        np.concatenate([a.v, b.v + a.n]),
        np.concatenate([a.w, b.w]),
    )


def contract(graph: Graph, labels: np.ndarray) -> Graph:
    """Quotient graph after merging vertices with equal ``labels``.

    ``labels`` must be integers in ``[0, k)``; the result has ``k``
    vertices, intra-cluster edges vanish and parallel inter-cluster edges
    merge by weight summation.  This is the contraction step of each AKPW
    round.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n,):
        raise ValueError(f"labels must have shape ({graph.n},), got {labels.shape}")
    if labels.size == 0:
        return Graph(1)
    k = int(labels.max()) + 1
    if labels.min() < 0:
        raise ValueError("labels must be non-negative")
    cu = labels[graph.u]
    cv = labels[graph.v]
    keep = cu != cv
    return Graph(k, cu[keep], cv[keep], graph.w[keep])


def relabel(graph: Graph, permutation: np.ndarray) -> Graph:
    """Apply a vertex permutation: new label of vertex ``i`` is ``permutation[i]``."""
    permutation = np.asarray(permutation, dtype=np.int64)
    if permutation.shape != (graph.n,):
        raise ValueError(f"permutation must have shape ({graph.n},)")
    if not np.array_equal(np.sort(permutation), np.arange(graph.n)):
        raise ValueError("permutation must be a bijection on [0, n)")
    return Graph(graph.n, permutation[graph.u], permutation[graph.v], graph.w)


def remove_edges(graph: Graph, edge_indices: np.ndarray) -> Graph:
    """Graph with the listed canonical edges removed.

    Parameters
    ----------
    graph:
        Source graph.
    edge_indices:
        Canonical edge indices to drop.  Each index must lie in
        ``[0, num_edges)`` and appear at most once — silent fancy-index
        wrap-around (negative indices) or double deletion almost always
        hides a caller bug, so both raise instead.

    Returns
    -------
    Graph
        A new graph on the same vertex set without the listed edges.

    Raises
    ------
    ValueError
        If an index is out of range or listed more than once.
    """
    edge_indices = np.asarray(edge_indices, dtype=np.int64).ravel()
    if edge_indices.size:
        if edge_indices.min() < 0 or edge_indices.max() >= graph.num_edges:
            raise ValueError(
                f"edge index out of range [0, {graph.num_edges}): "
                f"min {edge_indices.min()}, max {edge_indices.max()}"
            )
        if np.unique(edge_indices).size != edge_indices.size:
            raise ValueError("duplicate edge indices in removal batch")
    mask = np.ones(graph.num_edges, dtype=bool)
    mask[edge_indices] = False
    return graph.edge_subgraph(mask)


def degree_statistics(graph: Graph) -> dict[str, float]:
    """Summary statistics of the unweighted degree distribution."""
    deg = graph.unweighted_degrees()
    if deg.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
    return {
        "min": float(deg.min()),
        "max": float(deg.max()),
        "mean": float(deg.mean()),
        "std": float(deg.std()),
    }
