"""Synthetic graph generators.

The paper evaluates on SuiteSparse matrices (circuit, thermal, FEM,
protein, social and k-NN graphs).  Those files are not available offline,
so this module provides generators that match each family's *structure*
(dimensionality, stencil, degree distribution, weight heterogeneity) —
the properties that drive spectral behaviour.  DESIGN.md documents the
mapping from each paper test case to its generator.

All generators return :class:`repro.graphs.Graph`, are deterministic
given ``seed`` and produce connected graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.spatial as spatial

from repro.graphs.graph import Graph
from repro.graphs.components import largest_component
from repro.utils.rng import as_rng
from repro.utils.validation import check_vertex_count

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid2d",
    "grid3d",
    "triangulated_grid",
    "airfoil_mesh",
    "circuit_grid",
    "thermal_stack",
    "ecology_grid",
    "fem_mesh_2d",
    "fem_mesh_3d",
    "shell_mesh",
    "protein_contact_graph",
    "gaussian_mixture_points",
    "knn_graph",
    "barabasi_albert",
    "erdos_renyi_gnm",
    "random_geometric",
    "watts_strogatz",
]


# ----------------------------------------------------------------------
# Weight helpers
# ----------------------------------------------------------------------
def _edge_weights(
    m: int,
    weights: str | float,
    rng: np.random.Generator,
    spread: float = 1.0,
) -> np.ndarray:
    """Generate ``m`` positive edge weights.

    ``weights`` may be ``"unit"``, ``"uniform"`` (in ``[1, 1+spread]``),
    ``"lognormal"`` (sigma = ``spread``) or a positive constant.
    """
    if isinstance(weights, (int, float)):
        if weights <= 0:
            raise ValueError(f"constant weight must be positive, got {weights}")
        return np.full(m, float(weights))
    if weights == "unit":
        return np.ones(m)
    if weights == "uniform":
        return 1.0 + spread * rng.random(m)
    if weights == "lognormal":
        return np.exp(rng.normal(0.0, spread, size=m))
    raise ValueError(f"unknown weight scheme {weights!r}")


# ----------------------------------------------------------------------
# Elementary graphs (test fixtures and building blocks)
# ----------------------------------------------------------------------
def path_graph(n: int, weights: str | float = "unit", seed=None) -> Graph:
    """Path on ``n`` vertices."""
    check_vertex_count(n)
    idx = np.arange(n - 1, dtype=np.int64)
    return Graph(n, idx, idx + 1, _edge_weights(n - 1, weights, as_rng(seed)))


def cycle_graph(n: int, weights: str | float = "unit", seed=None) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    check_vertex_count(n, minimum=3)
    idx = np.arange(n, dtype=np.int64)
    return Graph(n, idx, (idx + 1) % n, _edge_weights(n, weights, as_rng(seed)))


def star_graph(n: int, weights: str | float = "unit", seed=None) -> Graph:
    """Star: vertex 0 joined to vertices ``1..n-1``."""
    check_vertex_count(n, minimum=2)
    leaves = np.arange(1, n, dtype=np.int64)
    return Graph(
        n, np.zeros(n - 1, dtype=np.int64), leaves,
        _edge_weights(n - 1, weights, as_rng(seed)),
    )


def complete_graph(n: int, weights: str | float = "unit", seed=None) -> Graph:
    """Complete graph ``K_n``."""
    check_vertex_count(n, minimum=2)
    iu, iv = np.triu_indices(n, k=1)
    return Graph(n, iu, iv, _edge_weights(iu.size, weights, as_rng(seed)))


# ----------------------------------------------------------------------
# Regular meshes
# ----------------------------------------------------------------------
def grid2d(
    nx: int, ny: int, weights: str | float = "unit", seed=None, spread: float = 1.0
) -> Graph:
    """4-point-stencil ``nx × ny`` grid (vertex ``(i, j)`` is ``i*ny + j``)."""
    check_vertex_count(nx)
    check_vertex_count(ny)
    rng = as_rng(seed)
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    vid = (i * ny + j).astype(np.int64)
    horizontal = (vid[:-1, :].ravel(), vid[1:, :].ravel())
    vertical = (vid[:, :-1].ravel(), vid[:, 1:].ravel())
    u = np.concatenate([horizontal[0], vertical[0]])
    v = np.concatenate([horizontal[1], vertical[1]])
    return Graph(nx * ny, u, v, _edge_weights(u.size, weights, rng, spread))


def grid3d(
    nx: int,
    ny: int,
    nz: int,
    weights: str | float = "unit",
    seed=None,
    spread: float = 1.0,
) -> Graph:
    """6-point-stencil ``nx × ny × nz`` grid."""
    for d in (nx, ny, nz):
        check_vertex_count(d)
    rng = as_rng(seed)
    i, j, k = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    vid = ((i * ny + j) * nz + k).astype(np.int64)
    pairs = [
        (vid[:-1, :, :].ravel(), vid[1:, :, :].ravel()),
        (vid[:, :-1, :].ravel(), vid[:, 1:, :].ravel()),
        (vid[:, :, :-1].ravel(), vid[:, :, 1:].ravel()),
    ]
    u = np.concatenate([p[0] for p in pairs])
    v = np.concatenate([p[1] for p in pairs])
    return Graph(nx * ny * nz, u, v, _edge_weights(u.size, weights, rng, spread))


def triangulated_grid(
    nx: int, ny: int, weights: str | float = "unit", seed=None
) -> Graph:
    """2-D grid with one diagonal per cell — the ``tmt_sym`` style stencil."""
    base = grid2d(nx, ny, weights="unit")
    i, j = np.meshgrid(np.arange(nx - 1), np.arange(ny - 1), indexing="ij")
    du = (i * ny + j).astype(np.int64).ravel()
    dv = ((i + 1) * ny + (j + 1)).astype(np.int64).ravel()
    rng = as_rng(seed)
    u = np.concatenate([base.u, du])
    v = np.concatenate([base.v, dv])
    return Graph(nx * ny, u, v, _edge_weights(u.size, weights, rng))


# ----------------------------------------------------------------------
# FEM-style meshes (airfoil, fe_rotor, brack2, parabolic_fem, fe_tooth)
# ----------------------------------------------------------------------
def _delaunay_edges(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique edges of the Delaunay triangulation/tetrahedralization."""
    tri = spatial.Delaunay(points)
    simplices = tri.simplices
    k = simplices.shape[1]
    pairs = []
    for a in range(k):
        for b in range(a + 1, k):
            pairs.append(simplices[:, [a, b]])
    edges = np.concatenate(pairs, axis=0)
    lo = edges.min(axis=1).astype(np.int64)
    hi = edges.max(axis=1).astype(np.int64)
    return lo, hi


def _inverse_length_weights(
    points: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """FEM-flavoured weights: inverse edge length (stiffness-like)."""
    lengths = np.linalg.norm(points[u] - points[v], axis=1)
    lengths = np.maximum(lengths, 1e-12)
    return 1.0 / lengths


def fem_mesh_2d(n: int, seed=None, graded: bool = False) -> Graph:
    """Delaunay triangulation of ``n`` random points in the unit square.

    With ``graded=True`` the point density is biased toward one corner,
    mimicking adaptively refined meshes such as ``parabolic_fem``.
    """
    check_vertex_count(n, minimum=4)
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    if graded:
        pts = pts ** np.array([2.0, 1.0])
    u, v = _delaunay_edges(pts)
    graph = Graph(n, u, v, _inverse_length_weights(pts, u, v))
    graph, _ = largest_component(graph)
    return graph


def airfoil_mesh(n: int = 4000, seed=None) -> Graph:
    """Airfoil-style unstructured planar mesh (the paper's Fig. 1 graph).

    Points are placed in a rectangle with density concentrated around a
    NACA-0012-like profile, the profile interior is removed, and the
    remainder Delaunay-triangulated — reproducing the long thin boundary
    layers of the classical ``airfoil`` SuiteSparse graph.
    """
    check_vertex_count(n, minimum=64)
    rng = as_rng(seed)

    def thickness(x: np.ndarray) -> np.ndarray:
        # NACA-0012 half-thickness polynomial on chord [0, 1].
        return 0.6 * (
            0.2969 * np.sqrt(np.maximum(x, 0.0))
            - 0.1260 * x
            - 0.3516 * x**2
            + 0.2843 * x**3
            - 0.1015 * x**4
        )

    # Oversample; keep points outside the airfoil; densify near the profile.
    target = n
    chord = rng.random(3 * target)
    offset = rng.normal(0.0, 0.08, size=3 * target)
    near = np.column_stack(
        [chord * 1.0, np.sign(offset) * (thickness(chord) + np.abs(offset))]
    )
    far = np.column_stack(
        [rng.uniform(-0.8, 2.0, 2 * target), rng.uniform(-0.9, 0.9, 2 * target)]
    )
    pts = np.concatenate([near, far], axis=0)
    inside = (
        (pts[:, 0] >= 0.0)
        & (pts[:, 0] <= 1.0)
        & (np.abs(pts[:, 1]) < thickness(np.clip(pts[:, 0], 0.0, 1.0)))
    )
    in_domain = (
        (pts[:, 0] >= -0.8)
        & (pts[:, 0] <= 2.0)
        & (np.abs(pts[:, 1]) <= 0.9)
        & ~inside
    )
    pts = pts[in_domain][:target]
    u, v = _delaunay_edges(pts)
    # Drop sliver edges that cut through the removed profile region.
    mid = 0.5 * (pts[u] + pts[v])
    cut = (
        (mid[:, 0] >= 0.0)
        & (mid[:, 0] <= 1.0)
        & (np.abs(mid[:, 1]) < 0.8 * thickness(np.clip(mid[:, 0], 0.0, 1.0)))
    )
    u, v = u[~cut], v[~cut]
    graph = Graph(pts.shape[0], u, v, _inverse_length_weights(pts, u, v))
    graph, _ = largest_component(graph)
    return graph


def fem_mesh_3d(n: int, seed=None, shape: str = "cube") -> Graph:
    """Delaunay tetrahedral mesh of random points in a 3-D domain.

    ``shape="cube"`` gives a ``brack2``/``fe_tooth``-style solid mesh,
    ``shape="annulus"`` a ``fe_rotor``-style rotating-machine cross
    section swept in z.
    """
    check_vertex_count(n, minimum=8)
    rng = as_rng(seed)
    if shape == "cube":
        pts = rng.random((n, 3))
    elif shape == "annulus":
        theta = rng.uniform(0.0, 2 * np.pi, 2 * n)
        radius = rng.uniform(0.4, 1.0, 2 * n)
        z = rng.uniform(0.0, 0.4, 2 * n)
        pts = np.column_stack(
            [radius * np.cos(theta), radius * np.sin(theta), z]
        )[:n]
    else:
        raise ValueError(f"unknown shape {shape!r}")
    u, v = _delaunay_edges(pts)
    graph = Graph(pts.shape[0], u, v, _inverse_length_weights(pts, u, v))
    graph, _ = largest_component(graph)
    return graph


def shell_mesh(nx: int, ny: int, seed=None) -> Graph:
    """Structural-shell style mesh (``bcsstk36``/``raefsky3`` stand-in).

    A 2-D grid with an extended 8-neighbour stencil plus a second
    next-nearest band, giving the wide, strongly-coupled rows typical of
    shell/stiffness matrices, with lognormal stiffness weights.
    """
    check_vertex_count(nx)
    check_vertex_count(ny)
    rng = as_rng(seed)
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    vid = (i * ny + j).astype(np.int64)
    us, vs = [], []
    offsets = [(1, 0), (0, 1), (1, 1), (1, -1), (2, 0), (0, 2)]
    for di, dj in offsets:
        src_i = slice(0, nx - di)
        dst_i = slice(di, nx)
        if dj >= 0:
            src_j = slice(0, ny - dj)
            dst_j = slice(dj, ny)
        else:
            src_j = slice(-dj, ny)
            dst_j = slice(0, ny + dj)
        us.append(vid[src_i, src_j].ravel())
        vs.append(vid[dst_i, dst_j].ravel())
    u = np.concatenate(us)
    v = np.concatenate(vs)
    return Graph(nx * ny, u, v, _edge_weights(u.size, "lognormal", rng, 0.7))


# ----------------------------------------------------------------------
# VLSI / physical-simulation graphs (G2/G3 circuit, thermal, ecology)
# ----------------------------------------------------------------------
def circuit_grid(
    nx: int,
    ny: int,
    layers: int = 2,
    via_density: float = 0.15,
    seed=None,
) -> Graph:
    """Power-grid style multi-layer circuit mesh (``G2/G3_circuit`` stand-in).

    Each metal layer is a 2-D grid with a layer-specific conductance
    class (upper layers are thicker, hence ~10× more conductive) and
    sparse randomly-placed vias connect adjacent layers — the structure
    of on-chip power delivery networks that the G-circuit matrices model.
    """
    check_vertex_count(nx)
    check_vertex_count(ny)
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    rng = as_rng(seed)
    per_layer = nx * ny
    us, vs, ws = [], [], []
    for layer in range(layers):
        base = grid2d(nx, ny, weights="uniform", seed=rng, spread=0.5)
        conductance = 10.0**layer
        us.append(base.u + layer * per_layer)
        vs.append(base.v + layer * per_layer)
        ws.append(base.w * conductance)
    for layer in range(layers - 1):
        num_vias = max(1, int(via_density * per_layer))
        sites = rng.choice(per_layer, size=num_vias, replace=False)
        us.append(sites + layer * per_layer)
        vs.append(sites + (layer + 1) * per_layer)
        ws.append(np.full(num_vias, 5.0 * 10.0**layer))
    graph = Graph(
        layers * per_layer,
        np.concatenate(us),
        np.concatenate(vs),
        np.concatenate(ws),
    )
    graph, _ = largest_component(graph)
    return graph


def thermal_stack(
    nx: int, ny: int, nz: int = 8, anisotropy: float = 4.0, seed=None
) -> Graph:
    """3-D thermal grid with anisotropic conduction (``thermal1/2`` stand-in).

    Vertical (z) conduction is ``anisotropy`` times weaker than lateral,
    as in die/package thermal models discretized by FD.
    """
    graph = grid3d(nx, ny, nz, weights="uniform", seed=seed, spread=0.3)
    # z-edges are the trailing block of grid3d's edge construction order,
    # but canonicalization reorders them, so detect by endpoint delta.
    dz = np.abs(graph.u - graph.v) == 1
    # vertex id = (i*ny + j)*nz + k, so |u-v| == 1 means a z-neighbour
    # except at k wrap — guard with same (i, j) cell check.
    same_cell = (graph.u // nz) == (graph.v // nz)
    z_edges = dz & same_cell
    w = graph.w.copy()
    w[z_edges] /= anisotropy
    return graph.reweighted(w)


def ecology_grid(nx: int, ny: int, roughness: float = 1.5, seed=None) -> Graph:
    """Landscape-resistance grid (``ecology2`` stand-in).

    A 2-D grid whose vertex 'habitat quality' field is smoothed random
    noise; edge conductance is the geometric mean of endpoint qualities,
    giving the spatially correlated heterogeneity of circuit-theory
    ecology models.
    """
    check_vertex_count(nx)
    check_vertex_count(ny)
    rng = as_rng(seed)
    field = rng.normal(0.0, roughness, size=(nx, ny))
    # Cheap smoothing: two passes of 4-neighbour averaging.
    for _ in range(2):
        padded = np.pad(field, 1, mode="edge")
        field = 0.2 * (
            padded[1:-1, 1:-1]
            + padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
        )
    quality = np.exp(field).ravel()
    base = grid2d(nx, ny, weights="unit")
    w = np.sqrt(quality[base.u] * quality[base.v])
    return base.reweighted(w)


# ----------------------------------------------------------------------
# Protein / k-NN / social / random graphs
# ----------------------------------------------------------------------
def protein_contact_graph(n: int, cutoff: float = 1.7, seed=None) -> Graph:
    """Protein-contact style graph (``pdb1HYS`` stand-in).

    Vertices are residues along a self-avoiding-ish random-walk backbone
    folded in 3-D; edges join residue pairs within ``cutoff`` distance,
    yielding the chain-plus-contacts structure of protein matrices.
    """
    check_vertex_count(n, minimum=4)
    rng = as_rng(seed)
    steps = rng.normal(0.0, 1.0, size=(n, 3))
    steps /= np.linalg.norm(steps, axis=1, keepdims=True)
    # Gentle drift confines the fold into a globule.
    positions = np.cumsum(steps, axis=0)
    positions -= 0.02 * np.cumsum(positions, axis=0) / np.arange(1, n + 1)[:, None]
    tree = spatial.cKDTree(positions)
    pairs = tree.query_pairs(r=cutoff * 1.6, output_type="ndarray")
    chain = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    edges = np.concatenate([pairs, chain], axis=0)
    dist = np.linalg.norm(positions[edges[:, 0]] - positions[edges[:, 1]], axis=1)
    weights = np.exp(-(dist**2) / (cutoff**2))
    graph = Graph(n, edges[:, 0], edges[:, 1], np.maximum(weights, 1e-6))
    graph, _ = largest_component(graph)
    return graph


def gaussian_mixture_points(
    n: int, dim: int = 8, clusters: int = 5, separation: float = 4.0, seed=None
) -> np.ndarray:
    """Sample ``n`` feature vectors from a Gaussian mixture.

    The RCV-80NN workload in the paper is an 80-nearest-neighbour graph
    over document features; this supplies the feature matrix for our
    k-NN stand-in.
    """
    check_vertex_count(n)
    rng = as_rng(seed)
    centers = rng.normal(0.0, separation, size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    return centers[assignment] + rng.normal(0.0, 1.0, size=(n, dim))


def knn_graph(
    points: np.ndarray,
    k: int,
    weight: str = "gaussian",
) -> Graph:
    """Symmetrized k-nearest-neighbour graph of a point set.

    ``weight="gaussian"`` uses ``exp(-d²/σ²)`` with σ the median k-NN
    distance (standard similarity-graph construction [14]);
    ``weight="unit"`` gives a combinatorial k-NN graph.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if k < 1 or k >= n:
        raise ValueError(f"k must be in [1, n), got {k} for n={n}")
    tree = spatial.cKDTree(points)
    dist, idx = tree.query(points, k=k + 1)
    dist, idx = dist[:, 1:], idx[:, 1:]  # drop self-match
    u = np.repeat(np.arange(n, dtype=np.int64), k)
    v = idx.ravel().astype(np.int64)
    d = dist.ravel()
    # Symmetrize by deduplicating mutual pairs (keep one copy, not the
    # sum — mutual nearest neighbours should not double their weight).
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * np.int64(n) + hi
    _, first = np.unique(key, return_index=True)
    u, v, d = lo[first], hi[first], d[first]
    if weight == "gaussian":
        sigma = np.median(d) if d.size else 1.0
        w = np.exp(-(d**2) / max(sigma, 1e-12) ** 2)
        w = np.maximum(w, 1e-8)
    elif weight == "unit":
        w = np.ones_like(d)
    else:
        raise ValueError(f"unknown weight scheme {weight!r}")
    graph = Graph(n, u, v, w)
    return _bridge_components(graph, points, weight)


def _bridge_components(graph: Graph, points: np.ndarray, weight: str) -> Graph:
    """Connect a spatial graph's components by nearest cross-component pairs.

    k-NN similarity graphs over clustered data are frequently
    disconnected; the standard remedy (used by spectral-clustering
    pipelines) is to add the shortest bridging edge per component so the
    Laplacian has a one-dimensional null space.
    """
    from repro.graphs.components import connected_components

    count, labels = connected_components(graph)
    if count <= 1:
        return graph
    sigma = 1.0
    if weight == "gaussian" and graph.num_edges:
        # Re-derive the kernel bandwidth from existing edge weights.
        dist = np.linalg.norm(points[graph.u] - points[graph.v], axis=1)
        sigma = float(np.median(dist)) or 1.0
    bridge_u: list[int] = []
    bridge_v: list[int] = []
    bridge_w: list[float] = []
    main = np.flatnonzero(labels == labels[0])
    tree = spatial.cKDTree(points[main])
    for comp in range(count):
        members = np.flatnonzero(labels == comp)
        if labels[main[0]] == comp:
            continue
        dist, idx = tree.query(points[members], k=1)
        best = int(np.argmin(dist))
        p, q = int(members[best]), int(main[idx[best]])
        d = float(dist[best])
        w_bridge = float(np.exp(-(d**2) / sigma**2)) if weight == "gaussian" else 1.0
        bridge_u.append(p)
        bridge_v.append(q)
        bridge_w.append(max(w_bridge, 1e-8))
    return graph.with_edges(
        np.array(bridge_u, dtype=np.int64),
        np.array(bridge_v, dtype=np.int64),
        np.array(bridge_w),
    )


def barabasi_albert(n: int, attach: int = 4, seed=None) -> Graph:
    """Preferential-attachment graph (``coAuthorsDBLP`` stand-in).

    Classic BA process: each new vertex attaches to ``attach`` existing
    vertices chosen proportionally to degree (repeated-target list
    implementation), producing the heavy-tailed degree distribution of
    collaboration networks.
    """
    check_vertex_count(n, minimum=2)
    if attach < 1 or attach >= n:
        raise ValueError(f"attach must be in [1, n), got {attach}")
    rng = as_rng(seed)
    targets = list(range(attach))
    repeated: list[int] = []
    us: list[int] = []
    vs: list[int] = []
    for new in range(attach, n):
        for t in targets:
            us.append(new)
            vs.append(t)
        repeated.extend(targets)
        repeated.extend([new] * attach)
        # Sample next targets (with replacement then dedupe; BA standard).
        chosen: set[int] = set()
        while len(chosen) < min(attach, new + 1):
            chosen.add(repeated[rng.integers(0, len(repeated))])
        targets = list(chosen)
    return Graph(n, np.array(us), np.array(vs), np.ones(len(us)))


def erdos_renyi_gnm(n: int, m: int, weights: str | float = "unit", seed=None) -> Graph:
    """Uniform random graph with ``n`` vertices and ``~m`` edges (``appu`` stand-in).

    ``appu`` is a dense pseudo-random graph; G(n, m) with the same
    density is structurally equivalent for spectral purposes.  A
    random-cycle backbone guarantees connectivity.
    """
    check_vertex_count(n, minimum=3)
    rng = as_rng(seed)
    max_m = n * (n - 1) // 2
    if m < n or m > max_m:
        raise ValueError(f"m must be in [n, n(n-1)/2] = [{n}, {max_m}], got {m}")
    # Backbone: random Hamiltonian cycle keeps the sample connected.
    perm = rng.permutation(n).astype(np.int64)
    bu, bv = perm, np.roll(perm, 1)
    extra = int(m - n)
    # Sample with surplus, dedupe against self-loops/duplicates in Graph.
    uu = rng.integers(0, n, size=int(2.5 * extra) + 16, dtype=np.int64)
    vv = rng.integers(0, n, size=uu.size, dtype=np.int64)
    u = np.concatenate([bu, uu])
    v = np.concatenate([bv, vv])
    graph = Graph(n, u, v, np.ones(u.size))
    if graph.num_edges > m:
        keep = np.concatenate(
            [
                np.flatnonzero(graph.has_edges(bu, bv))[: graph.num_edges],
                np.array([], dtype=np.int64),
            ]
        )
        backbone_mask = np.zeros(graph.num_edges, dtype=bool)
        backbone_mask[graph.edge_indices(bu, bv)] = True
        others = np.flatnonzero(~backbone_mask)
        chosen = rng.choice(others, size=m - int(backbone_mask.sum()), replace=False)
        mask = backbone_mask.copy()
        mask[chosen] = True
        graph = graph.edge_subgraph(mask)
    if weights != "unit":
        graph = graph.reweighted(_edge_weights(graph.num_edges, weights, rng))
    return graph


def random_geometric(n: int, radius: float | None = None, seed=None) -> Graph:
    """Random geometric graph in the unit square (connected by construction)."""
    check_vertex_count(n, minimum=2)
    rng = as_rng(seed)
    if radius is None:
        radius = 1.8 * np.sqrt(np.log(max(n, 2)) / (np.pi * n))
    pts = rng.random((n, 2))
    tree = spatial.cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    graph = Graph(
        n,
        pairs[:, 0] if pairs.size else np.array([], dtype=np.int64),
        pairs[:, 1] if pairs.size else np.array([], dtype=np.int64),
        np.ones(pairs.shape[0]),
    )
    graph, _ = largest_component(graph)
    return graph


def watts_strogatz(n: int, k: int = 4, rewire: float = 0.1, seed=None) -> Graph:
    """Small-world ring lattice with random rewiring."""
    check_vertex_count(n, minimum=4)
    if k % 2 or k < 2 or k >= n:
        raise ValueError(f"k must be even and in [2, n), got {k}")
    rng = as_rng(seed)
    base = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for hop in range(1, k // 2 + 1):
        us.append(base)
        vs.append((base + hop) % n)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    flip = rng.random(u.size) < rewire
    v = v.copy()
    v[flip] = rng.integers(0, n, size=int(flip.sum()))
    graph = Graph(n, u, v, np.ones(u.size))
    graph, _ = largest_component(graph)
    return graph
