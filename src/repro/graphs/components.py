"""Connectivity utilities: components, BFS orders, largest component.

Spectral sparsification assumes a connected input (the Laplacian pencil
is only positive definite on ``1⊥`` of a connected graph), so every
pipeline entry point validates connectivity through this module.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graphs.graph import Graph

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "bfs_order",
    "bfs_tree_edges",
]


def connected_components(graph: Graph) -> tuple[int, np.ndarray]:
    """Number of components and per-vertex component labels."""
    if graph.num_edges == 0:
        return graph.n, np.arange(graph.n, dtype=np.int64)
    count, labels = csgraph.connected_components(
        graph.adjacency(), directed=False, return_labels=True
    )
    return int(count), labels.astype(np.int64)


def is_connected(graph: Graph) -> bool:
    """True when the graph has exactly one connected component."""
    if graph.n <= 1:
        return True
    count, _ = connected_components(graph)
    return count == 1


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest component plus the vertex map.

    Returns
    -------
    (subgraph, vertices):
        ``vertices[i]`` is the original label of the subgraph's vertex
        ``i``.  When the graph is already connected the graph itself is
        returned (no copy).
    """
    count, labels = connected_components(graph)
    if count == 1:
        return graph, np.arange(graph.n, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    keep_label = int(np.argmax(sizes))
    vertices = np.flatnonzero(labels == keep_label)
    remap = -np.ones(graph.n, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size)
    edge_mask = (labels[graph.u] == keep_label) & (labels[graph.v] == keep_label)
    sub = Graph(
        vertices.size,
        remap[graph.u[edge_mask]],
        remap[graph.v[edge_mask]],
        graph.w[edge_mask],
    )
    return sub, vertices


def bfs_order(graph: Graph, source: int = 0) -> np.ndarray:
    """Vertices in breadth-first order from ``source`` (own component only)."""
    order, _ = csgraph.breadth_first_order(
        graph.adjacency(), i_start=source, directed=False, return_predecessors=True
    )
    return order.astype(np.int64)


def bfs_tree_edges(graph: Graph, source: int = 0) -> np.ndarray:
    """Canonical edge indices of a BFS tree rooted at ``source``.

    Useful as the cheapest possible spanning-tree baseline and inside
    the AKPW clustering rounds.
    """
    order, predecessors = csgraph.breadth_first_order(
        graph.adjacency(), i_start=source, directed=False, return_predecessors=True
    )
    reached = order[order >= 0]
    parents = predecessors[reached]
    valid = parents >= 0
    child = reached[valid]
    parent = parents[valid].astype(np.int64)
    idx = graph.edge_indices(child, parent)
    if np.any(idx < 0):  # pragma: no cover - BFS edges always exist
        raise RuntimeError("BFS produced an edge absent from the graph")
    return idx
