"""repro — Similarity-aware spectral graph sparsification by edge filtering.

A self-contained reproduction of Z. Feng, *"Similarity-Aware Spectral
Sparsification by Edge Filtering"*, DAC 2018.  The package provides:

- :class:`repro.Graph` — the weighted undirected graph container;
- :func:`repro.sparsify_graph` — the headline algorithm: compute a
  spectral sparsifier with a *guaranteed* similarity level σ²;
- spanning-tree, solver, eigenvalue and graph-signal-processing
  substrates under :mod:`repro.trees`, :mod:`repro.solvers`,
  :mod:`repro.spectral`;
- streaming maintenance under :mod:`repro.stream` — a
  :class:`~repro.stream.DynamicSparsifier` keeps the σ² guarantee as
  edge insert/delete/reweight events arrive, with checkpointing for
  warm restarts;
- query serving under :mod:`repro.serve` — a content-addressed
  sparsifier registry with LRU spill-to-disk plus a batched
  :class:`~repro.serve.QueryEngine` (and stdlib HTTP service)
  answering resistance/solve/similarity/embedding queries against the
  warm sparsifier proxy;
- the paper's three applications under :mod:`repro.apps` (SDD solver,
  spectral partitioner, complex-network simplification);
- experiment regenerators for every table/figure under
  :mod:`repro.experiments`.

Quickstart
----------
>>> from repro import generators, sparsify_graph
>>> g = generators.grid2d(64, 64, seed=0)
>>> result = sparsify_graph(g, sigma2=100.0, seed=0)
>>> result.sparsifier.num_edges < g.num_edges
True
"""

from repro.graphs import Graph
from repro.graphs import generators

__version__ = "1.0.0"

# The heavy algorithm modules are imported lazily so that lightweight
# uses (e.g. just building graphs) do not pay for solver imports.
_LAZY_EXPORTS = {
    "SimilarityAwareSparsifier": "repro.sparsify",
    "SparsifyResult": "repro.sparsify",
    "sparsify_graph": "repro.sparsify",
}

__all__ = [
    "Graph",
    "generators",
    "SimilarityAwareSparsifier",
    "SparsifyResult",
    "sparsify_graph",
    "__version__",
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
