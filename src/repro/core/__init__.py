"""Unified stage-pipeline core shared by every sparsification workflow.

The paper's algorithm is one staged dataflow — spanning tree →
spectral edge embedding → similarity scoring → off-tree edge filtering
→ (optional) rescaling (Feng, DAC 2018 §3).  This package expresses
that dataflow once, as composable first-class stages, so the batch
kernel (:mod:`repro.sparsify.similarity_aware`), the shard-parallel
pipeline (:mod:`repro.sparsify.parallel`), the streaming tier-3 drift
repair (:mod:`repro.stream.dynamic`) and the serving registry build
(:mod:`repro.serve.registry`) all execute the same filter loop instead
of carrying private copies:

- :class:`~repro.core.stage.Stage` — the protocol: declared
  ``requires``/``provides`` context names plus a ``run(ctx)`` body;
- :class:`~repro.core.context.PipelineContext` — owns the graph, the
  evolving sparsifier state, the managed solver handle, the RNG and
  all accumulated statistics;
- :class:`~repro.core.pipeline.SparsifyPipeline` — the composer:
  validates stage wiring, instruments every stage with wall-clock
  timings and counters (:class:`~repro.core.profile.PipelineProfile`)
  and offers before/after hook points for callers;
- :mod:`repro.core.stages` — the paper loop as stages
  (:class:`TreeStage`, :class:`EstimateStage`, :class:`EmbeddingStage`,
  :class:`FilterStage`, :class:`SimilarityStage`, :class:`DensifyStage`,
  :class:`RescaleStage`), their bodies lifted verbatim out of the
  former per-subsystem copies — golden-parity tests pin the masks and
  trees bit-identical to the pre-refactor implementations.
"""

from repro.core.context import PipelineContext
from repro.core.pipeline import PipelineValidationError, SparsifyPipeline
from repro.core.profile import PipelineProfile, StageReport
from repro.core.stage import Stage
from repro.core.stages import (
    DensifyIteration,
    DensifyStage,
    EmbeddingStage,
    EstimateStage,
    FilterStage,
    RescaleStage,
    SimilarityStage,
    TreeStage,
)

__all__ = [
    "Stage",
    "PipelineContext",
    "PipelineProfile",
    "StageReport",
    "SparsifyPipeline",
    "PipelineValidationError",
    "DensifyIteration",
    "TreeStage",
    "EstimateStage",
    "EmbeddingStage",
    "FilterStage",
    "SimilarityStage",
    "DensifyStage",
    "RescaleStage",
]
