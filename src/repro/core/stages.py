"""The paper's loop as first-class pipeline stages.

The four hot stage bodies (tree, embedding, filter, similarity)
dispatch through the kernel registry (``ctx.kernel(name)``, see
:mod:`repro.kernels.registry`): the context's ``kernel_backend`` knob
selects the implementation family, and the ``reference`` backend is
the pre-refactor code unchanged — the golden-parity suite in
``tests/core/test_golden_parity.py`` pins the produced masks and trees
bit-identical to the originals for fixed seeds, for *every* backend.
Mapping to the paper:

=================  =====================================================
Stage              Paper reference
=================  =====================================================
``TreeStage``      §3.1(a) spanning-tree backbone (low-stretch LSST)
``EstimateStage``  §3.6 extreme eigenvalue estimation (λmax power
                   iteration, λmin node coloring / Eq. 18)
``EmbeddingStage`` §3.2 spectral edge embedding — t-step generalized
                   power iterations, Joule heats (Eqs. 6, 12)
``FilterStage``    §3.5 off-tree edge filtering with θ_σ (Eq. 15)
``SimilarityStage`` §3.7 step 6 dissimilarity check + edge addition
``DensifyStage``   §3.7 densification loop (drives the four above;
                   the ``"drift"`` mode is the GRASS-style streaming
                   repair cadence)
``RescaleStage``   §3.1 optional edge re-scaling improvement
=================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import PipelineContext
from repro.core.stage import Stage
from repro.obs import get_tracer
from repro.utils.timing import Timer

# The sparsify kernels (rescaling) and the kernel registry are imported
# inside the stage bodies: repro.sparsify's public modules are
# themselves pipeline consumers, so a module-level import here would
# close an import cycle through the package __init__.

__all__ = [
    "DensifyIteration",
    "TreeStage",
    "EstimateStage",
    "EmbeddingStage",
    "FilterStage",
    "SimilarityStage",
    "DensifyStage",
    "RescaleStage",
]

_DENSIFY_MODES = ("batch", "drift")
_RESCALE_SCHEMES = ("similarity", "off_tree")


@dataclass(frozen=True)
class DensifyIteration:
    """Diagnostics of one densification iteration.

    ``sigma2_estimate = lambda_max / lambda_min`` is the estimated
    relative condition number *before* this iteration's edge additions.
    """

    iteration: int
    lambda_max: float
    lambda_min: float
    sigma2_estimate: float
    threshold: float
    num_candidates: int
    num_added: int
    num_edges: int
    elapsed: float


class TreeStage(Stage):
    """§3.1(a): extract the spanning-tree backbone."""

    name = "tree"
    requires = ("graph", "rng")
    provides = ("tree_indices",)

    def run(self, ctx: PipelineContext) -> dict:
        """Build the backbone with the context's ``tree_method``.

        Parameters
        ----------
        ctx:
            Pipeline context; ``tree_indices`` is written.

        Returns
        -------
        dict
            ``{"edges": <backbone size>}``.
        """
        return ctx.kernel("lsst")


class EstimateStage(Stage):
    """§3.6: estimate the pencil extremes λmax (power iteration) and λmin."""

    name = "estimate"
    requires = ("state", "rng")
    provides = ("lambda_max", "lambda_min", "sigma2_estimate",
                "reuse_embedding")

    def run(self, ctx: PipelineContext) -> dict:
        """Refresh ``lambda_max``/``lambda_min``/``sigma2_estimate``.

        The context's ``estimator_backend`` selects the implementation:
        ``reference`` runs the solve-backed generalized power
        iteration; ``perturbation`` answers most rounds from
        first-order Rayleigh bounds over cached probe vectors and only
        spends solves to confirm an apparent certification.

        Parameters
        ----------
        ctx:
            Pipeline context with a mounted sparsifier state.

        Returns
        -------
        dict
            ``{"solves": <power-iteration solves spent>}``.
        """
        return ctx.kernel("estimator")


class EmbeddingStage(Stage):
    """§3.2: score every off-tree edge by its t-step Joule heat."""

    name = "embedding"
    requires = ("state", "rng")
    provides = ("off_tree", "heats", "probes", "embedding_reused",
                "estimator_cache")

    def run(self, ctx: PipelineContext) -> dict:
        """Compute ``off_tree`` indices and their heats.

        Parameters
        ----------
        ctx:
            Pipeline context with a mounted sparsifier state.

        Returns
        -------
        dict
            ``{"off_tree": <candidates scored>, "probe_vectors": r}``.
        """
        return ctx.kernel("embedding")


class FilterStage(Stage):
    """§3.5: θ_σ-threshold the normalized heats (Eq. 15)."""

    name = "filter"
    requires = ("state", "off_tree", "heats", "lambda_max")
    provides = ("threshold", "candidates", "lambda_min")

    def run(self, ctx: PipelineContext) -> dict:
        """Select passing candidates, most critical first.

        ``lambda_min`` is refreshed from the state's cached degrees so
        the threshold always reflects the sparsifier as embedded (a
        no-op repeat in the batch cadence, the live value in the
        streaming drift cadence).

        Parameters
        ----------
        ctx:
            Pipeline context carrying the embedding outputs.

        Returns
        -------
        dict
            ``{"candidates": <passing count>}``.
        """
        return ctx.kernel("filtering")


class SimilarityStage(Stage):
    """§3.7 step 6: keep only mutually dissimilar candidates and add them."""

    name = "similarity"
    requires = ("state", "candidates")
    provides = ("added",)

    def run(self, ctx: PipelineContext) -> dict:
        """Greedily select dissimilar edges and grow the sparsifier.

        Parameters
        ----------
        ctx:
            Pipeline context carrying the filtered candidates.

        Returns
        -------
        dict
            ``{"added": <edges added this pass>}``.
        """
        return ctx.kernel("scoring")


class DensifyStage(Stage):
    """§3.7: the densification loop driving the four filter sub-stages.

    Two cadences share the same sub-stage bodies:

    - ``mode="batch"`` — the from-scratch/refine loop: estimate first,
      stop as soon as the σ² target is certified, otherwise embed →
      filter → add and re-enter.
    - ``mode="drift"`` — the streaming tier-3 repair: the caller
      supplies the drift check's ``lambda_max`` (the context enters
      with the estimate already known), the loop embeds → filters →
      adds against the carried incremental solver and only then
      re-estimates — the GRASS-style cadence.

    Sub-stage executions are timed and counted individually under
    dotted profile names (``densify.embedding``, ...).

    Parameters
    ----------
    mode:
        ``"batch"`` (default) or ``"drift"``.

    Raises
    ------
    ValueError
        If ``mode`` is unknown.
    """

    name = "densify"
    provides = ("state", "edge_mask", "iterations", "converged",
                "sigma2_estimate", "lambda_min", "probes",
                "reuse_embedding")
    child_names = (
        "densify.estimate",
        "densify.embedding",
        "densify.filter",
        "densify.similarity",
    )

    def __init__(self, mode: str = "batch") -> None:
        if mode not in _DENSIFY_MODES:
            raise ValueError(
                f"unknown densify mode {mode!r}; expected one of {_DENSIFY_MODES}"
            )
        self.mode = mode
        if mode == "batch":
            self.requires = ("graph", "rng", "tree_indices")
        else:
            self.requires = ("graph", "rng", "state", "lambda_max")
        self._estimate = EstimateStage()
        self._embedding = EmbeddingStage()
        self._filter = FilterStage()
        self._similarity = SimilarityStage()

    def _step(self, ctx: PipelineContext, stage: Stage) -> None:
        """Run one sub-stage with per-execution profiling."""
        name = f"{self.name}.{stage.name}"
        with get_tracer().span(name, category="stage") as span:
            counters = stage.run(ctx)
            span.annotate(counters)
        ctx.profile.record(name, span.elapsed, counters)

    def run(self, ctx: PipelineContext) -> dict:
        """Drive the filter loop until σ² is certified or it runs dry.

        Parameters
        ----------
        ctx:
            Pipeline context; ``edge_mask``, ``converged``,
            ``sigma2_estimate`` and (batch cadence) ``iterations`` are
            written.

        Returns
        -------
        dict
            ``{"iterations": <passes>, "added": <total edges added>}``.
        """
        for child in self.child_names:
            ctx.profile.ensure(child)
        if self.mode == "batch":
            return self._run_batch(ctx)
        return self._run_drift(ctx)

    def _run_batch(self, ctx: PipelineContext) -> dict:
        """The from-scratch/refine cadence (pre-refactor ``densify``)."""
        state = ctx.ensure_state()
        total_added = 0
        for iteration in range(1, ctx.max_iterations + 1):
            with Timer() as timer:
                self._step(ctx, self._estimate)
                if ctx.sigma2_estimate <= ctx.sigma2:
                    ctx.iterations.append(
                        DensifyIteration(
                            iteration=iteration,
                            lambda_max=ctx.lambda_max,
                            lambda_min=ctx.lambda_min,
                            sigma2_estimate=ctx.sigma2_estimate,
                            threshold=1.0,
                            num_candidates=0,
                            num_added=0,
                            num_edges=state.num_edges,
                            elapsed=timer.lap(),
                        )
                    )
                    ctx.converged = True
                    break
                self._step(ctx, self._embedding)
                self._step(ctx, self._filter)
                self._step(ctx, self._similarity)
            ctx.iterations.append(
                DensifyIteration(
                    iteration=iteration,
                    lambda_max=ctx.lambda_max,
                    lambda_min=ctx.lambda_min,
                    sigma2_estimate=ctx.sigma2_estimate,
                    threshold=ctx.threshold,
                    num_candidates=int(ctx.candidates.size),
                    num_added=int(ctx.added.size),
                    num_edges=state.num_edges,
                    elapsed=timer.elapsed,
                )
            )
            total_added += int(ctx.added.size)
            if ctx.added.size == 0:
                if ctx.embedding_reused:
                    # The dry round scored stale cached probes; force a
                    # fresh solve-backed embedding before concluding the
                    # filter has truly run dry.
                    ctx.probes = None
                    ctx.reuse_embedding = False
                    continue
                # Filter passed nothing although the similarity target
                # is unmet — the estimates have converged as far as the
                # embedding can certify.
                break
        ctx.edge_mask = state.edge_mask
        return {"iterations": len(ctx.iterations), "added": total_added}

    def _run_drift(self, ctx: PipelineContext) -> dict:
        """The streaming repair cadence (pre-refactor ``_redensify``)."""
        state = ctx.state
        ctx.lambda_min = state.lambda_min()
        ctx.sigma2_estimate = ctx.lambda_max / ctx.lambda_min
        total_added = 0
        passes = 0
        for _ in range(ctx.max_iterations):
            if ctx.sigma2_estimate <= ctx.sigma2:
                break
            if state.edge_mask.all():
                break  # no off-tree candidates left to recover
            passes += 1
            self._step(ctx, self._embedding)
            self._step(ctx, self._filter)
            self._step(ctx, self._similarity)
            total_added += int(ctx.added.size)
            if ctx.added.size == 0:
                if ctx.embedding_reused:
                    # Same retry as the batch cadence: never conclude
                    # dryness from stale cached probes.
                    ctx.probes = None
                    ctx.reuse_embedding = False
                    continue
                break  # filter is dry; estimates are as certified as
                # the embedding allows (same stop rule as the batch).
            self._step(ctx, self._estimate)
        ctx.edge_mask = state.edge_mask
        return {"iterations": passes, "added": total_added}


class RescaleStage(Stage):
    """§3.1's optional improvement: re-scale the finished sparsifier.

    Parameters
    ----------
    scheme:
        ``"similarity"`` — global ``√(λmax λmin)`` rescaling
        (:func:`~repro.sparsify.rescaling.rescale_for_similarity`);
        ``"off_tree"`` — κ-minimizing off-tree factor search
        (:func:`~repro.sparsify.rescaling.tune_off_tree_scale`).

    Raises
    ------
    ValueError
        If ``scheme`` is unknown.
    """

    name = "rescale"
    requires = ("graph", "state", "tree_indices")
    provides = ("rescale",)

    def __init__(self, scheme: str = "similarity") -> None:
        if scheme not in _RESCALE_SCHEMES:
            raise ValueError(
                f"unknown rescale scheme {scheme!r}; "
                f"expected one of {_RESCALE_SCHEMES}"
            )
        self.scheme = scheme

    def run(self, ctx: PipelineContext) -> dict:
        """Attach a :class:`~repro.sparsify.rescaling.RescaleResult`.

        Parameters
        ----------
        ctx:
            Pipeline context with the finished sparsifier state.

        Returns
        -------
        dict
            ``{"scheme": 1}`` (presence marker; the scale itself lives
            on ``ctx.rescale``).
        """
        from repro.sparsify.rescaling import (
            rescale_for_similarity,
            tune_off_tree_scale,
        )

        sparsifier = ctx.state.subgraph()
        if self.scheme == "similarity":
            ctx.rescale = rescale_for_similarity(
                ctx.graph,
                sparsifier,
                power_iterations=ctx.power_iterations,
                seed=ctx.rng,
            )
        else:
            ctx.rescale = tune_off_tree_scale(
                ctx.graph,
                sparsifier,
                ctx.tree_indices,
                power_iterations=ctx.power_iterations,
                seed=ctx.rng,
            )
        return {"trials": 1 if self.scheme == "similarity" else 7}
