"""The :class:`SparsifyPipeline` composer: validate, instrument, run.

A pipeline is an ordered stage list.  Before running, the composition
is validated against the context: every stage's declared ``requires``
must be satisfiable from the context's current values or an earlier
stage's ``provides`` — mis-wired compositions fail fast with a
:class:`PipelineValidationError` naming the stage and the missing
inputs instead of dying mid-run on an ``AttributeError``.  While
running, every stage execution is wrapped in an observability span
(category ``"stage"``; see :mod:`repro.obs`) whose wall-clock interval
and counters are folded into the context's
:class:`~repro.core.profile.PipelineProfile` — the profile is a view
over the trace, and
:meth:`~repro.core.profile.PipelineProfile.from_trace` rebuilds it
from the recorded spans.  Callers can observe or intercept execution
through the ``before_stage``/``after_stage`` hook points (the serving
layer uses them for build progress, tests for wiring assertions).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.core.context import PipelineContext
from repro.core.stage import Stage
from repro.obs import get_tracer

__all__ = ["PipelineValidationError", "SparsifyPipeline"]

StageHook = Callable[[Stage, PipelineContext], None]


class PipelineValidationError(ValueError):
    """A stage's declared inputs cannot be satisfied by the composition."""


class SparsifyPipeline:
    """Composable, validated, instrumented stage sequence.

    Parameters
    ----------
    stages:
        Stages in execution order.
    before_stage, after_stage:
        Optional hooks called as ``hook(stage, ctx)`` around every
        top-level stage execution.

    Raises
    ------
    ValueError
        If ``stages`` is empty.

    Examples
    --------
    >>> from repro.core import DensifyStage, SparsifyPipeline, TreeStage
    >>> pipeline = SparsifyPipeline([TreeStage(), DensifyStage()])
    >>> pipeline.stage_names
    ('tree', 'densify')
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        before_stage: StageHook | None = None,
        after_stage: StageHook | None = None,
    ) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.before_stage = before_stage
        self.after_stage = after_stage

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Names of the composed stages, in execution order."""
        return tuple(stage.name for stage in self.stages)

    def validate(self, ctx: PipelineContext) -> None:
        """Check that every stage's inputs will be available.

        Walks the composition in order, treating a name as available
        when the context already holds it (:meth:`PipelineContext.has`)
        or an earlier stage declared it in ``provides``.

        Parameters
        ----------
        ctx:
            The context the pipeline is about to run against.

        Raises
        ------
        PipelineValidationError
            Naming the first stage with unsatisfied ``requires`` and
            the missing context names.
        """
        available = {
            field.name
            for field in dataclasses.fields(ctx)
            if ctx.has(field.name)
        }
        for stage in self.stages:
            missing = [name for name in stage.requires if name not in available]
            if missing:
                raise PipelineValidationError(
                    f"stage {stage.name!r} requires {missing} but the "
                    f"context and earlier stages only provide "
                    f"{sorted(available)}"
                )
            available.update(stage.provides)

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Validate, then execute every stage against the context.

        Parameters
        ----------
        ctx:
            The run's :class:`~repro.core.context.PipelineContext`.

        Returns
        -------
        PipelineContext
            The same context, mutated in place (returned for
            chaining).

        Raises
        ------
        PipelineValidationError
            When the composition's wiring is unsatisfiable (before any
            stage has run).
        """
        self.validate(ctx)
        for stage in self.stages:
            ctx.profile.ensure(stage.name)
            for child in stage.child_names:
                ctx.profile.ensure(child)
        for stage in self.stages:
            if self.before_stage is not None:
                self.before_stage(stage, ctx)
            with get_tracer().span(stage.name, category="stage") as span:
                counters = stage.run(ctx)
                span.annotate(counters)
            ctx.profile.record(stage.name, span.elapsed, counters)
            if self.after_stage is not None:
                self.after_stage(stage, ctx)
        return ctx
