"""Per-stage instrumentation accumulated across a pipeline run.

Every stage execution is recorded as wall-clock seconds plus optional
counters under the stage's profile name.  Loop-driver stages (the
densification loop) record their sub-stages under dotted names
(``"densify.embedding"``), so one :class:`PipelineProfile` shows both
the coarse phase split (tree vs densify) and the per-kernel breakdown
inside the loop.  Profiles merge (shard-parallel runs stitch the
per-shard profiles into one) and serialize to JSON (the serving
layer's ``/stats`` payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageReport", "PipelineProfile"]


@dataclass
class StageReport:
    """Accumulated executions of one (dotted) stage name.

    Attributes
    ----------
    name:
        The stage's profile name; sub-stages of a loop driver use
        dotted names (``"densify.filter"``), whose seconds are *also*
        contained in the driver's own total.
    calls:
        Number of recorded executions.
    seconds:
        Total wall-clock seconds across all executions.
    counters:
        Summed per-execution counters (e.g. ``added``, ``candidates``).
    """

    name: str
    calls: int = 0
    seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)


class PipelineProfile:
    """Ordered collection of :class:`StageReport` entries for one run.

    Examples
    --------
    >>> profile = PipelineProfile()
    >>> profile.record("tree", 0.25, {"edges": 99})
    >>> profile.record("tree", 0.05, {"edges": 1})
    >>> report = profile.reports["tree"]
    >>> (report.calls, round(report.seconds, 2), report.counters["edges"])
    (2, 0.3, 100)
    """

    def __init__(self) -> None:
        self.reports: dict[str, StageReport] = {}

    def __bool__(self) -> bool:
        return any(report.calls for report in self.reports.values())

    def ensure(self, name: str) -> StageReport:
        """Pre-register a stage name so the display order is stable.

        Parameters
        ----------
        name:
            Profile name to register (a no-op when already present).

        Returns
        -------
        StageReport
            The (possibly empty) report registered under ``name``.
        """
        report = self.reports.get(name)
        if report is None:
            report = StageReport(name=name)
            self.reports[name] = report
        return report

    def record(
        self, name: str, seconds: float, counters: dict | None = None
    ) -> None:
        """Fold one stage execution into the profile.

        Parameters
        ----------
        name:
            Profile name of the executed stage.
        seconds:
            Wall-clock seconds of this execution.
        counters:
            Optional counters of this execution, summed into the
            report's accumulated counters.
        """
        report = self.ensure(name)
        report.calls += 1
        report.seconds += float(seconds)
        if counters:
            for key, value in counters.items():
                report.counters[key] = report.counters.get(key, 0) + value

    def merge(self, other: "PipelineProfile") -> None:
        """Accumulate another profile into this one (shard stitching).

        Parameters
        ----------
        other:
            Profile whose calls, seconds and counters are added to this
            profile's reports (matched by name; new names appended).
        """
        for name, report in other.reports.items():
            mine = self.ensure(name)
            mine.calls += report.calls
            mine.seconds += report.seconds
            for key, value in report.counters.items():
                mine.counters[key] = mine.counters.get(key, 0) + value

    def seconds(self, name: str) -> float:
        """Total wall-clock seconds recorded under one stage name.

        Parameters
        ----------
        name:
            Profile name to look up.

        Returns
        -------
        float
            Accumulated seconds (``0.0`` for unknown names).
        """
        report = self.reports.get(name)
        return report.seconds if report is not None else 0.0

    def total_seconds(self) -> float:
        """Wall-clock total over the top-level stages.

        Dotted sub-stage names are excluded — their time is already
        contained in their loop driver's total.

        Returns
        -------
        float
            Sum of seconds over all non-dotted stage names.
        """
        return sum(
            report.seconds
            for name, report in self.reports.items()
            if "." not in name
        )

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the serving layer's ``/stats`` shape).

        Returns
        -------
        dict
            ``{name: {"calls": int, "seconds": float, "counters": {...}}}``
            in display order.
        """
        return {
            name: {
                "calls": report.calls,
                "seconds": report.seconds,
                "counters": dict(report.counters),
            }
            for name, report in self.reports.items()
        }

    @classmethod
    def from_trace(cls, tracer) -> "PipelineProfile":
        """Rebuild a profile from a tracer's recorded stage spans.

        The pipeline records every stage execution as a span (category
        ``"stage"``) carrying the stage's counters as annotations, so
        the profile is strictly a *view* over the trace: this
        classmethod reduces the spans back into per-stage calls,
        seconds and counters, bit-equal to the profile the run
        accumulated inline.

        Parameters
        ----------
        tracer:
            A :class:`repro.obs.Tracer` that observed the run.

        Returns
        -------
        PipelineProfile
            The reduced per-stage view of the trace.
        """
        profile = cls()
        for record in tracer.records(category="stage"):
            counters = {
                key: value
                for key, value in record.args.items()
                if isinstance(value, (int, float))
            }
            profile.record(record.name, record.duration, counters)
        return profile

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineProfile":
        """Rebuild a profile from an :meth:`as_dict` snapshot.

        The serving registry uses this to carry an artifact's build
        profile across LRU spill/reload cycles.

        Parameters
        ----------
        payload:
            A snapshot produced by :meth:`as_dict`.

        Returns
        -------
        PipelineProfile
            A profile equal (up to report identity) to the snapshotted
            one.
        """
        profile = cls()
        for name, entry in payload.items():
            report = profile.ensure(name)
            report.calls = int(entry.get("calls", 0))
            report.seconds = float(entry.get("seconds", 0.0))
            report.counters = dict(entry.get("counters", {}))
        return profile

    def table(self) -> str:
        """Human-readable per-stage table (the CLI ``--profile`` view).

        Returns
        -------
        str
            Aligned columns: stage, calls, seconds, counters.  Dotted
            sub-stage names are indented under their loop driver.
        """
        rows = [("stage", "calls", "seconds", "counters")]
        for name, report in self.reports.items():
            label = "  " + name.split(".", 1)[1] if "." in name else name
            counters = " ".join(
                f"{key}={value:g}" for key, value in report.counters.items()
            )
            rows.append(
                (label, str(report.calls), f"{report.seconds:.4f}", counters)
            )
        rows.append(
            ("total", "", f"{self.total_seconds():.4f}", "")
        )
        widths = [max(len(row[i]) for row in rows) for i in range(3)]
        lines = []
        for label, calls, seconds, counters in rows:
            line = (
                f"{label:<{widths[0]}}  {calls:>{widths[1]}}  "
                f"{seconds:>{widths[2]}}  {counters}"
            )
            lines.append(line.rstrip())
        return "\n".join(lines)
