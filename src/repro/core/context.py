"""The shared mutable context a :class:`SparsifyPipeline` run flows through.

:class:`PipelineContext` owns everything the paper's staged dataflow
touches: the host graph, the run's RNG, the similarity target and all
algorithm knobs, the evolving sparsifier state (and through it the
managed solver), the per-stage scratch values (estimates, heats,
filter candidates) and the accumulated statistics
(:class:`~repro.core.profile.PipelineProfile`, densification
diagnostics).  Stages communicate exclusively through named context
attributes; :meth:`PipelineContext.has` is the availability test the
pipeline's wiring validation is built on.

The ``state`` attribute is duck-typed: any object exposing the
:class:`~repro.sparsify.state.SparsifierState` surface (``edge_mask``,
``laplacian``, ``host_laplacian``, ``solver()``, ``lambda_min()``,
``add_edges()``, ``num_edges``, ``subgraph()``) works — the streaming
layer mounts its live :class:`~repro.stream.DynamicSparsifier` behind
such an adapter so the tier-3 drift repair runs the very same stage
bodies against the carried incremental solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.profile import PipelineProfile
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng

__all__ = ["PipelineContext"]


@dataclass
class PipelineContext:
    """Everything one sparsification pipeline run owns and evolves.

    Attributes
    ----------
    graph:
        The host graph ``G`` (fixed for the run).
    rng:
        The run's random generator; every stochastic stage draws from
        this one stream, which is what makes a pipeline run a pure
        function of ``(graph, knobs, seed)``.  Seeds and generators
        are both accepted (coerced via :func:`repro.utils.rng.as_rng`).
    sigma2:
        Target upper bound on the relative condition number.
    tree_method, t, num_vectors, power_iterations, max_iterations,
    max_edges_per_iteration, similarity_mode, solver_method,
    max_update_rank, amg_rebuild_every:
        The algorithm knobs, with the same semantics and defaults as
        :class:`~repro.sparsify.SimilarityAwareSparsifier`.
    kernel_backend:
        Hot-kernel implementation family (``"reference"``,
        ``"vectorized"``, ``"numba"`` or ``"auto"``); resolved on
        construction to a backend runnable in this environment (see
        :func:`repro.kernels.registry.resolve_backend`).  Every
        backend is bit-identical, so this knob changes speed only.
    estimator_backend:
        σ²-estimator kernel family (``"reference"``,
        ``"perturbation"`` or ``"auto"``); resolved on construction
        (see :func:`repro.kernels.registry.resolve_estimator_backend`,
        ``"auto"`` → ``"perturbation"``).  Unlike ``kernel_backend``
        this is an *algorithmic* substitute contracted by a σ² quality
        bound, not bit-parity: ``"perturbation"`` replaces most
        per-round power-iteration solves with GRASS-style first-order
        perturbation bounds from cached probe vectors.
    estimator_refresh:
        With the perturbation estimator, how many consecutive
        densification rounds may reuse one probe-vector block before a
        fresh (solve-backed) embedding is forced; ≥ 1.
    probes:
        Cached ``(n, r)`` propagated probe block from the latest fresh
        embedding (enables solve-free reuse rounds); ``None`` until an
        embedding kernel ran.
    reuse_embedding:
        Estimator's decision for the *next* embedding dispatch: reuse
        the cached probe block (no solves) instead of re-embedding.
    embedding_reused:
        Whether the latest embedding dispatch actually reused the
        cached block (drives the densifier's dry-round retry).
    estimator_cache:
        Scratch dict owned by the estimator kernel (anchor eigenvector,
        rounds-since-embed counter).
    initial_mask:
        Optional starting sparsifier mask (the §3.1(c) incremental
        improvement path).
    tree_indices:
        Canonical backbone edge indices; provided up front or by a
        :class:`~repro.core.stages.TreeStage`.
    state:
        The evolving sparsifier state (see module docstring); built on
        demand by :meth:`ensure_state` when a stage needs it.
    lambda_max, lambda_min, sigma2_estimate, threshold:
        Scalar estimates of the current iteration (NaN until set).
    off_tree, heats, candidates, added:
        Per-iteration scratch arrays of the filter loop.
    edge_mask:
        The final sparsifier mask (set by the densification driver).
    converged:
        Whether the σ² target was certified.
    iterations:
        :class:`~repro.core.stages.DensifyIteration` diagnostics.
    rescale:
        Optional :class:`~repro.sparsify.rescaling.RescaleResult` from
        a terminal :class:`~repro.core.stages.RescaleStage`.
    profile:
        Accumulated per-stage timings and counters.
    """

    graph: Graph
    rng: int | np.random.Generator | None
    sigma2: float
    tree_method: str = "akpw"
    t: int = 2
    num_vectors: int | None = None
    power_iterations: int = 10
    max_iterations: int = 50
    max_edges_per_iteration: int | None = None
    similarity_mode: str = "endpoint"
    solver_method: str = "auto"
    max_update_rank: int = 64
    amg_rebuild_every: int = 8
    kernel_backend: str = "reference"
    estimator_backend: str = "reference"
    estimator_refresh: int = 3
    probes: np.ndarray | None = None
    reuse_embedding: bool = False
    embedding_reused: bool = False
    estimator_cache: dict = field(default_factory=dict)
    initial_mask: np.ndarray | None = None
    tree_indices: np.ndarray | None = None
    state: object | None = None
    lambda_max: float = float("nan")
    lambda_min: float = float("nan")
    sigma2_estimate: float = float("nan")
    threshold: float = float("nan")
    off_tree: np.ndarray | None = None
    heats: np.ndarray | None = None
    candidates: np.ndarray | None = None
    added: np.ndarray | None = None
    edge_mask: np.ndarray | None = None
    converged: bool = False
    iterations: list = field(default_factory=list)
    rescale: object | None = None
    profile: PipelineProfile = field(default_factory=PipelineProfile)

    def __post_init__(self) -> None:
        if self.sigma2 <= 1.0:
            raise ValueError(f"sigma2 must exceed 1, got {self.sigma2}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        self.sigma2 = float(self.sigma2)
        self.rng = as_rng(self.rng)
        if self.estimator_refresh < 1:
            raise ValueError(
                f"estimator_refresh must be >= 1, got {self.estimator_refresh}"
            )
        # Deferred import: repro.kernels reaches back into the sparsify
        # package, which imports repro.core at module level.
        from repro.kernels.registry import (
            resolve_backend,
            resolve_estimator_backend,
        )

        self.kernel_backend = resolve_backend(self.kernel_backend)
        self.estimator_backend = resolve_estimator_backend(
            self.estimator_backend
        )
        if self.tree_indices is not None:
            self.tree_indices = np.asarray(self.tree_indices, dtype=np.int64)

    def has(self, name: str) -> bool:
        """Whether a context name is available to a stage.

        ``None`` values and NaN floats count as absent — they are the
        "not yet computed" markers of the optional fields.

        Parameters
        ----------
        name:
            Context attribute name (one of the dataclass fields).

        Returns
        -------
        bool
            True when the attribute exists and holds a value.
        """
        value = getattr(self, name, None)
        if value is None:
            return False
        if isinstance(value, float) and math.isnan(value):
            return False
        return True

    def ensure_state(self):
        """The evolving sparsifier state, built on first use.

        When no ``state`` was mounted by the caller, a fresh
        :class:`~repro.sparsify.state.SparsifierState` is constructed
        from the context's graph, backbone, ``initial_mask`` and solver
        knobs.

        Returns
        -------
        object
            The mounted or newly built sparsifier state.

        Raises
        ------
        ValueError
            If no state is mounted and ``tree_indices`` is missing.
        """
        if self.state is None:
            if self.tree_indices is None:
                raise ValueError(
                    "cannot build SparsifierState without tree_indices; "
                    "run a TreeStage first or mount a state explicitly"
                )
            from repro.sparsify.state import SparsifierState

            self.state = SparsifierState(
                self.graph,
                self.tree_indices,
                initial_mask=self.initial_mask,
                solver_method=self.solver_method,
                max_update_rank=self.max_update_rank,
                amg_rebuild_every=self.amg_rebuild_every,
            )
        return self.state

    def kernel(self, name: str) -> dict | None:
        """Run one registered hot kernel on this context's backend.

        The kernel's wiring gathers its inputs from and writes its
        outputs back to this context; stages dispatch their bodies
        through this helper (``repro lint`` charges the dispatch with
        the kernel's declared dataflow, see
        :data:`repro.analysis.framework.KERNEL_DISPATCH_EFFECTS`).

        Parameters
        ----------
        name:
            A :data:`repro.kernels.registry.KERNELS` key (``"lsst"``,
            ``"embedding"``, ``"filtering"``, ``"scoring"``).

        Returns
        -------
        dict or None
            The kernel wiring's profile counters.

        Raises
        ------
        ValueError
            If ``name`` is not a registered kernel.
        """
        from repro.kernels.registry import run_kernel

        return run_kernel(self, name)

    def edge_cap(self) -> int:
        """Off-tree edges addable per densification iteration.

        Returns
        -------
        int
            ``max_edges_per_iteration`` when set, else the paper's
            "small portions" default ``max(100, 5% · |V|)``.
        """
        if self.max_edges_per_iteration is not None:
            return int(self.max_edges_per_iteration)
        return max(100, int(0.05 * self.graph.n))
