"""The :class:`Stage` protocol of the unified sparsification pipeline.

A stage is one named step of the paper's dataflow.  It declares which
context names it consumes (``requires``) and which it defines
(``provides``) so :class:`~repro.core.pipeline.SparsifyPipeline` can
validate a composition before running it, and its :meth:`Stage.run`
body mutates the shared :class:`~repro.core.context.PipelineContext`
in place.  Timing is *not* a stage concern — the pipeline (and the
loop-driver stages that invoke sub-stages) wrap every ``run`` call
with a wall-clock timer and fold the optional counter dict each call
returns into the run's :class:`~repro.core.profile.PipelineProfile`.
"""

from __future__ import annotations

from repro.core.context import PipelineContext

__all__ = ["Stage"]


class Stage:
    """One named, instrumented step of the sparsification dataflow.

    Subclasses set three class-level declarations and implement
    :meth:`run`:

    Attributes
    ----------
    name:
        Stable identifier used for profiling and display (e.g.
        ``"tree"``; loop drivers record sub-stages as
        ``"densify.filter"``).
    requires:
        Context names that must be available before the stage runs
        (see :meth:`~repro.core.context.PipelineContext.has`).
    provides:
        Context names the stage defines, available to later stages.
    child_names:
        Profile names of sub-stages a loop-driver stage will record
        (pre-registered so the profile table keeps logical order).
    """

    name: str = "stage"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    child_names: tuple[str, ...] = ()

    def run(self, ctx: PipelineContext) -> dict | None:
        """Execute the stage against the shared context.

        Parameters
        ----------
        ctx:
            The pipeline context; the stage reads its ``requires``
            names and writes its ``provides`` names in place.

        Returns
        -------
        dict or None
            Optional counters (name → number) folded into the run's
            :class:`~repro.core.profile.PipelineProfile`.

        Raises
        ------
        NotImplementedError
            Always, on the base class — subclasses implement the body.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
