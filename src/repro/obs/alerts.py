"""Declarative SLO alert rules over metrics-registry snapshots.

An :class:`AlertRule` names a metric, a threshold and an evaluation
*kind*; :func:`evaluate_rules` checks a list of rules against one
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` and folds the
per-rule verdicts into a :class:`HealthReport`.  The serving tier
(:class:`repro.serve.service.SparsifierService`) evaluates its rules on
every ``GET /health`` and answers 200 when all pass, 503 otherwise —
the standard load-balancer health-check contract.

Four rule kinds cover the signals the instrumented layers emit:

- ``gauge_max`` — a gauge must stay at or below the threshold (the
  streaming drift ratio staying under its redensify ceiling).
- ``counter_max`` — a counter total must stay at or below the
  threshold (hard error budgets).
- ``quantile_max`` — a histogram quantile must stay at or below the
  threshold (per-endpoint p99 latency); evaluated per labelled child
  and the worst child decides.
- ``ratio_max`` — one counter divided by another must stay at or below
  the threshold (eviction churn per registry event, tier-3 redensify
  repairs per streaming batch).

A rule whose metric is absent from the snapshot passes: no traffic is
not an outage.  ``min_count`` guards quantile and ratio rules against
flapping on a handful of samples.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from .metrics import quantile_from_counts

__all__ = [
    "AlertResult",
    "AlertRule",
    "HealthReport",
    "default_serving_rules",
    "evaluate",
    "evaluate_rules",
]

_KINDS = ("gauge_max", "counter_max", "quantile_max", "ratio_max")


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO check against a metrics snapshot.

    Attributes
    ----------
    name:
        Stable rule identifier (shows up in ``/health`` JSON).
    kind:
        One of ``gauge_max``, ``counter_max``, ``quantile_max``,
        ``ratio_max``.
    metric:
        The metric family to read (the numerator, for ``ratio_max``).
    threshold:
        The ceiling the observed value must not exceed.
    labels:
        Label filter as a tuple of ``(name, value)`` pairs; ``None``
        evaluates across all children (sum for counters, worst child
        for gauges/quantiles).
    quantile:
        Quantile for ``quantile_max`` rules (default 0.99).
    denominator:
        Denominator counter family for ``ratio_max`` rules.
    denominator_labels:
        Label filter for the denominator; ``None`` sums all children.
    min_count:
        Minimum sample count (histogram observations or denominator
        total) before the rule is allowed to fail.
    description:
        Human sentence for runbooks and ``/health`` output.
    """

    name: str
    kind: str
    metric: str
    threshold: float
    labels: tuple | None = None
    quantile: float = 0.99
    denominator: str | None = None
    denominator_labels: tuple | None = None
    min_count: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown alert kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(
                f"quantile must be in [0, 1], got {self.quantile}"
            )
        if self.kind == "ratio_max" and not self.denominator:
            raise ValueError("ratio_max rules need a denominator metric")


@dataclass(frozen=True)
class AlertResult:
    """Verdict of one rule evaluation.

    Attributes
    ----------
    rule:
        The rule's ``name``.
    ok:
        Whether the rule passed.
    value:
        The observed value (``None`` when the metric was absent or
        under ``min_count``).
    threshold:
        The rule's ceiling, echoed for self-contained output.
    detail:
        Human sentence explaining the verdict.
    """

    rule: str
    ok: bool
    value: float | None
    threshold: float
    detail: str

    def as_dict(self) -> dict:
        """JSON-ready payload for the ``/health`` body.

        Returns
        -------
        dict
            All fields, plainly.
        """
        return {
            "rule": self.rule,
            "ok": self.ok,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }


@dataclass
class HealthReport:
    """All rule verdicts for one snapshot.

    Attributes
    ----------
    results:
        One :class:`AlertResult` per rule, in rule order.
    """

    results: tuple = field(default_factory=tuple)

    @property
    def healthy(self) -> bool:
        """Whether every rule passed."""
        return all(result.ok for result in self.results)

    def as_dict(self) -> dict:
        """JSON-ready payload (the ``GET /health`` response body).

        Returns
        -------
        dict
            ``{"healthy": bool, "rules": [per-rule dicts]}``.
        """
        return {
            "healthy": self.healthy,
            "rules": [result.as_dict() for result in self.results],
        }


def _labels_key(labelnames: list, labels: tuple) -> str | None:
    """Snapshot child key for a label filter, or None on mismatch."""
    values = dict(labels)
    if set(values) != set(labelnames):
        return None
    return json.dumps([str(values[name]) for name in labelnames])


def _scalar_children(entry: dict, labels: tuple | None) -> list:
    """``(key, value)`` pairs of a counter/gauge entry under a filter."""
    values = entry.get("values", {})
    if labels is None:
        return list(values.items())
    key = _labels_key(entry.get("labelnames", []), labels)
    if key is None or key not in values:
        return []
    return [(key, values[key])]


def _pretty_key(key: str, labelnames: list) -> str:
    """Render a snapshot child key as ``a=x,b=y`` for messages."""
    try:
        parts = json.loads(key)
    except json.JSONDecodeError:
        return key
    if not parts:
        return "(no labels)"
    return ",".join(f"{n}={v}" for n, v in zip(labelnames, parts))


def evaluate(rule: AlertRule, snapshot: dict) -> AlertResult:
    """Check one rule against one registry snapshot.

    Parameters
    ----------
    rule:
        The rule to evaluate.
    snapshot:
        A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dump.

    Returns
    -------
    AlertResult
        The verdict; absent metrics and under-``min_count`` children
        pass with an explanatory detail.
    """
    entry = snapshot.get(rule.metric)
    if not isinstance(entry, dict):
        return AlertResult(
            rule=rule.name, ok=True, value=None, threshold=rule.threshold,
            detail=f"{rule.metric} absent (no traffic)",
        )
    if rule.kind == "gauge_max":
        return _evaluate_scalar(rule, entry, worst=max)
    if rule.kind == "counter_max":
        return _evaluate_scalar(rule, entry, worst=None)
    if rule.kind == "quantile_max":
        return _evaluate_quantile(rule, entry)
    return _evaluate_ratio(rule, entry, snapshot)


def _evaluate_scalar(rule: AlertRule, entry: dict, worst) -> AlertResult:
    """Evaluate gauge_max (worst child) or counter_max (summed)."""
    children = _scalar_children(entry, rule.labels)
    if not children:
        return AlertResult(
            rule=rule.name, ok=True, value=None, threshold=rule.threshold,
            detail=f"{rule.metric} has no matching samples",
        )
    labelnames = entry.get("labelnames", [])
    if worst is None:
        value = float(sum(v for _, v in children))
        where = rule.metric
    else:
        key, value = worst(children, key=lambda item: item[1])
        value = float(value)
        where = f"{rule.metric}{{{_pretty_key(key, labelnames)}}}"
    ok = value <= rule.threshold
    verdict = "within" if ok else "EXCEEDS"
    return AlertResult(
        rule=rule.name, ok=ok, value=value, threshold=rule.threshold,
        detail=f"{where} = {value:g} {verdict} ceiling {rule.threshold:g}",
    )


def _evaluate_quantile(rule: AlertRule, entry: dict) -> AlertResult:
    """Evaluate quantile_max: the worst labelled child decides."""
    buckets = tuple(entry.get("buckets", ()))
    if entry.get("kind") != "histogram" or not buckets:
        return AlertResult(
            rule=rule.name, ok=True, value=None, threshold=rule.threshold,
            detail=f"{rule.metric} is not a histogram",
        )
    labelnames = entry.get("labelnames", [])
    worst_value, worst_key, skipped = None, None, 0
    for key, payload in _scalar_children(entry, rule.labels):
        count = int(payload.get("count", 0))
        if count < max(rule.min_count, 1):
            skipped += 1
            continue
        value = quantile_from_counts(
            buckets, payload.get("counts", []), count, rule.quantile
        )
        if math.isnan(value):
            continue
        if worst_value is None or value > worst_value:
            worst_value, worst_key = value, key
    if worst_value is None:
        return AlertResult(
            rule=rule.name, ok=True, value=None, threshold=rule.threshold,
            detail=(
                f"{rule.metric}: no child with >= "
                f"{max(rule.min_count, 1)} samples ({skipped} below)"
            ),
        )
    ok = worst_value <= rule.threshold
    verdict = "within" if ok else "EXCEEDS"
    where = f"{rule.metric}{{{_pretty_key(worst_key, labelnames)}}}"
    return AlertResult(
        rule=rule.name, ok=ok, value=worst_value, threshold=rule.threshold,
        detail=(
            f"p{rule.quantile * 100:g} {where} = {worst_value:g} "
            f"{verdict} ceiling {rule.threshold:g}"
        ),
    )


def _evaluate_ratio(
    rule: AlertRule, entry: dict, snapshot: dict
) -> AlertResult:
    """Evaluate ratio_max: numerator / denominator counters."""
    numerator = float(
        sum(v for _, v in _scalar_children(entry, rule.labels))
    )
    denom_entry = snapshot.get(rule.denominator)
    if not isinstance(denom_entry, dict):
        return AlertResult(
            rule=rule.name, ok=True, value=None, threshold=rule.threshold,
            detail=f"{rule.denominator} absent (no traffic)",
        )
    denominator = float(
        sum(
            v for _, v in _scalar_children(
                denom_entry, rule.denominator_labels
            )
        )
    )
    if denominator <= 0 or denominator < rule.min_count:
        return AlertResult(
            rule=rule.name, ok=True, value=None, threshold=rule.threshold,
            detail=(
                f"{rule.denominator} total {denominator:g} below "
                f"min_count {rule.min_count}"
            ),
        )
    value = numerator / denominator
    ok = value <= rule.threshold
    verdict = "within" if ok else "EXCEEDS"
    return AlertResult(
        rule=rule.name, ok=ok, value=value, threshold=rule.threshold,
        detail=(
            f"{rule.metric}/{rule.denominator} = {numerator:g}/"
            f"{denominator:g} = {value:g} {verdict} ceiling "
            f"{rule.threshold:g}"
        ),
    )


def evaluate_rules(rules, snapshot: dict) -> HealthReport:
    """Check every rule against one snapshot.

    Parameters
    ----------
    rules:
        Iterable of :class:`AlertRule`.
    snapshot:
        A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dump.

    Returns
    -------
    HealthReport
        Per-rule verdicts, in rule order.
    """
    return HealthReport(
        results=tuple(evaluate(rule, snapshot) for rule in rules)
    )


def default_serving_rules(
    drift_ceiling: float = 1.5,
    p99_ceiling: float = 0.5,
    eviction_ratio: float = 0.5,
    tier3_ratio: float = 0.25,
    latency_min_count: int = 30,
) -> tuple:
    """The serving tier's stock SLO rules.

    Parameters
    ----------
    drift_ceiling:
        Max tolerated ``repro_stream_drift_ratio`` — above this the
        sparsifier's σ² estimate has drifted past its redensify band.
    p99_ceiling:
        Max tolerated per-endpoint p99 of
        ``repro_http_request_seconds``.
    eviction_ratio:
        Max tolerated share of registry events that are evictions
        (thrashing artifact cache).
    tier3_ratio:
        Max tolerated redensify (tier-3) repairs per streaming batch —
        the most expensive repair tier running hot.
    latency_min_count:
        Samples required per endpoint before the latency rule may fail.

    Returns
    -------
    tuple
        Four :class:`AlertRule` objects, evaluated in this order.
    """
    return (
        AlertRule(
            name="stream_drift_ratio",
            kind="gauge_max",
            metric="repro_stream_drift_ratio",
            threshold=drift_ceiling,
            description=(
                "σ² drift ratio must stay under the redensify ceiling"
            ),
        ),
        AlertRule(
            name="http_p99_latency",
            kind="quantile_max",
            metric="repro_http_request_seconds",
            threshold=p99_ceiling,
            quantile=0.99,
            min_count=latency_min_count,
            description="worst-endpoint p99 request latency",
        ),
        AlertRule(
            name="registry_eviction_churn",
            kind="ratio_max",
            metric="repro_registry_events_total",
            labels=(("event", "eviction"),),
            threshold=eviction_ratio,
            denominator="repro_registry_events_total",
            min_count=10,
            description="share of registry events that are evictions",
        ),
        AlertRule(
            name="stream_tier3_repairs",
            kind="ratio_max",
            metric="repro_stream_repairs_total",
            labels=(("tier", "redensify"),),
            threshold=tier3_ratio,
            denominator="repro_stream_batches_total",
            min_count=10,
            description="redensify repairs per streaming batch",
        ),
    )
