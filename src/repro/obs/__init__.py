"""Unified observability layer: tracing, metrics, ambient wiring.

Every instrumented call site — pipeline stages, kernel dispatch,
solvers, streaming repair, the serving tier — reaches observability
through two ambient accessors::

    from repro.obs import get_metrics, get_tracer

    get_metrics().counter("repro_cg_solves_total").inc()
    with get_tracer().span("densify.embedding", category="stage"):
        ...

Both default to shared null singletons, so an un-configured process
pays an attribute lookup and a no-op call.  The CLI's ``--trace``
flag, the HTTP service and tests install real collectors with
:func:`configure`, :func:`enable_metrics` or the :func:`observed`
scope.  Observability is strictly passive: it never touches RNG
streams or numeric state, and the parity suite in ``tests/obs`` pins
masks, trees, σ² estimates and RNG streams bit-identical with
collectors enabled vs disabled.

Consumption of the collected data lives in three sibling modules:
:mod:`repro.obs.analyze` (trace reports, critical path, trace diffs),
:mod:`repro.obs.ledger` (durable run records and the benchmark
regression gate) and :mod:`repro.obs.alerts` (declarative SLO rules
behind the serving tier's ``/health``).  They are imported lazily so
the instrumented hot path never pays for them.
"""

from __future__ import annotations

import contextlib

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "alerts",
    "analyze",
    "configure",
    "disable",
    "enable_metrics",
    "get_metrics",
    "get_tracer",
    "ledger",
    "observed",
]

_LAZY_SUBMODULES = ("alerts", "analyze", "ledger")


def __getattr__(name: str):
    """Import the analysis submodules on first attribute access.

    Parameters
    ----------
    name:
        The requested attribute.

    Returns
    -------
    module
        One of :mod:`repro.obs.alerts`, :mod:`repro.obs.analyze`,
        :mod:`repro.obs.ledger`.

    Raises
    ------
    AttributeError
        For any other missing name.
    """
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")

_active_tracer = NULL_TRACER
_active_metrics = NULL_METRICS

#: Sentinel distinguishing "leave as is" from "install this".
_KEEP = object()


def get_tracer():
    """The process-active tracer (the null singleton when disabled).

    Returns
    -------
    Tracer or NullTracer
        Whatever :func:`configure` installed last.
    """
    return _active_tracer


def get_metrics():
    """The process-active metrics registry (null when disabled).

    Returns
    -------
    MetricsRegistry or NullMetrics
        Whatever :func:`configure` installed last.
    """
    return _active_metrics


def configure(tracer=_KEEP, metrics=_KEEP) -> None:
    """Install process-wide observability collectors.

    Parameters
    ----------
    tracer:
        A :class:`Tracer`, ``None`` to disable tracing, or omitted to
        keep the current tracer.
    metrics:
        A :class:`MetricsRegistry`, ``None`` to disable metrics, or
        omitted to keep the current registry.
    """
    global _active_tracer, _active_metrics
    if tracer is not _KEEP:
        _active_tracer = NULL_TRACER if tracer is None else tracer
    if metrics is not _KEEP:
        _active_metrics = NULL_METRICS if metrics is None else metrics


def enable_metrics() -> MetricsRegistry:
    """Ensure a real metrics registry is active and return it.

    The serving tier calls this at construction so registry, engine
    and solver counters all land in the registry its ``/metrics``
    endpoint renders.

    Returns
    -------
    MetricsRegistry
        The already-active real registry, or a freshly installed one.
    """
    global _active_metrics
    if not _active_metrics.enabled:
        _active_metrics = MetricsRegistry()
    return _active_metrics


def disable() -> None:
    """Reset both collectors to the null singletons."""
    configure(tracer=None, metrics=None)


@contextlib.contextmanager
def observed(tracer=_KEEP, metrics=_KEEP):
    """Scope-limited :func:`configure` restoring the previous state.

    Parameters
    ----------
    tracer:
        As in :func:`configure`.
    metrics:
        As in :func:`configure`.

    Returns
    -------
    Iterator[None]
        Context-manager protocol; yields once inside the scope.
    """
    previous = (_active_tracer, _active_metrics)
    configure(tracer=tracer, metrics=metrics)
    try:
        yield
    finally:
        configure(tracer=previous[0], metrics=previous[1])
