"""Thread-safe in-process metrics registry with Prometheus exposition.

Three metric kinds cover every signal the instrumented layers emit:

- :class:`Counter` — monotone totals (kernel calls, CG iterations,
  registry hits/misses, repair-tier activations).
- :class:`Gauge` — last-observed values (streaming drift ratio,
  Woodbury update rank, resident artifact count).
- :class:`Histogram` — fixed-bucket distributions (request latency,
  micro-batch flush sizes, per-kernel timings) with Prometheus
  cumulative-``le`` semantics and quantile estimation for p50/p99
  reporting.

All metrics in one :class:`MetricsRegistry` share a single lock, so
updates from the serving tier's handler threads, the query engine's
flush path and shard worker threads are safe.  A registry snapshots to
a JSON-ready dict, merges snapshots from other registries (shard and
cross-process stitching), resets between benchmark repetitions and
renders the Prometheus text exposition format served by the HTTP
service's ``/metrics`` endpoint.

The :data:`NULL_METRICS` singleton implements the same surface as
no-ops; it is what :func:`repro.obs.get_metrics` returns while metrics
are disabled, keeping the disabled hot path to an attribute lookup and
an empty method call.
"""

from __future__ import annotations

import json
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "quantile_from_counts",
]

#: Default histogram upper bounds (seconds-flavoured, Prometheus-style);
#: a final implicit ``+Inf`` bucket always exists.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labelnames: tuple, labels: dict) -> str:
    """Serialize one label-value combination into a stable dict key.

    Parameters
    ----------
    labelnames:
        Declared label names, in declaration order.
    labels:
        Label values supplied by the update call.

    Returns
    -------
    str
        ``json.dumps`` of the value list in declaration order (stable,
        reversible, safe for values containing separators).

    Raises
    ------
    ValueError
        If the supplied labels do not exactly match the declared names.
    """
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return json.dumps([str(labels[name]) for name in labelnames])


def quantile_from_counts(
    buckets: tuple, counts: list, count: int, q: float
) -> float:
    """Estimate a quantile from raw histogram bucket counts.

    Linear interpolation inside the bucket that crosses the target
    rank — the standard ``histogram_quantile`` estimator.  The overflow
    bucket is clamped to the last finite bound.  This is the shared
    core behind :meth:`Histogram.quantile` and the alert engine's
    evaluation of snapshot payloads
    (:func:`repro.obs.alerts.evaluate`).

    Parameters
    ----------
    buckets:
        Finite upper bounds, sorted ascending.
    counts:
        Per-bucket (non-cumulative) counts, one slot per bound plus the
        final overflow slot.
    count:
        Total observation count (sum of ``counts``).
    q:
        Quantile in ``[0, 1]`` (0.5 = p50, 0.99 = p99).

    Returns
    -------
    float
        The estimated quantile, or ``nan`` with no observations.

    Raises
    ------
    ValueError
        If ``q`` is outside ``[0, 1]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return float("nan")
    target = q * count
    cumulative = 0.0
    for i, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target and bucket_count:
            if i >= len(buckets):
                return buckets[-1]
            lower = buckets[i - 1] if i else 0.0
            upper = buckets[i]
            fraction = (target - previous) / bucket_count
            return lower + (upper - lower) * fraction
    return buckets[-1]


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Common storage of one named metric family (children by labels)."""

    kind = "abstract"

    def __init__(
        self, name: str, help_text: str, labelnames: tuple, lock
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: dict[str, object] = {}

    def _child_locked(self, labels: dict):
        """Get or create the child value slot for one label combination."""
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._zero()
            self._children[key] = child
        return key, child

    def _zero(self):  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing total.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> hits = registry.counter("cache_hits_total", labelnames=("tier",))
    >>> hits.inc(tier="memory")
    >>> hits.inc(2, tier="memory")
    >>> hits.value(tier="memory")
    3.0
    """

    kind = "counter"

    def _zero(self) -> list:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add a non-negative amount to one labelled child.

        Parameters
        ----------
        amount:
            Increment (default 1).
        **labels:
            Values for every declared label name.

        Raises
        ------
        ValueError
            If ``amount`` is negative (counters are monotone).
        """
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            _, child = self._child_locked(labels)
            child[0] += amount

    def value(self, **labels: str) -> float:
        """Current total of one labelled child (0.0 when never bumped).

        Parameters
        ----------
        **labels:
            Values for every declared label name.

        Returns
        -------
        float
            The accumulated total.
        """
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            return float(child[0]) if child is not None else 0.0


class Gauge(_Metric):
    """Last-observed value (may go up and down)."""

    kind = "gauge"

    def _zero(self) -> list:
        return [0.0]

    def set(self, value: float, **labels: str) -> None:
        """Overwrite one labelled child with a new observation.

        Parameters
        ----------
        value:
            The observed value.
        **labels:
            Values for every declared label name.
        """
        with self._lock:
            _, child = self._child_locked(labels)
            child[0] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Shift one labelled child by a (possibly negative) delta.

        Parameters
        ----------
        amount:
            Delta to apply (default +1).
        **labels:
            Values for every declared label name.
        """
        with self._lock:
            _, child = self._child_locked(labels)
            child[0] += amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled child (0.0 when never set).

        Parameters
        ----------
        **labels:
            Values for every declared label name.

        Returns
        -------
        float
            The last observation.
        """
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            return float(child[0]) if child is not None else 0.0


class Histogram(_Metric):
    """Fixed-bucket distribution with cumulative-``le`` exposition.

    Each child stores per-bucket (non-cumulative) counts — one slot per
    finite upper bound plus a final overflow slot — alongside the sum
    and count of all observations.  Rendering and quantile estimation
    accumulate the counts, matching Prometheus ``le`` semantics
    (``value <= bound`` lands in the bucket).
    """

    kind = "histogram"

    def __init__(
        self, name, help_text, labelnames, lock,
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds

    def _zero(self) -> dict:
        return {
            "counts": [0] * (len(self.buckets) + 1),
            "sum": 0.0,
            "count": 0,
        }

    def observe(self, value: float, **labels: str) -> None:
        """Fold one observation into the labelled child.

        Parameters
        ----------
        value:
            The observed sample (e.g. seconds, batch size).
        **labels:
            Values for every declared label name.
        """
        value = float(value)
        with self._lock:
            _, child = self._child_locked(labels)
            slot = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = i
                    break
            child["counts"][slot] += 1
            child["sum"] += value
            child["count"] += 1

    def count(self, **labels: str) -> int:
        """Number of observations folded into one labelled child.

        Parameters
        ----------
        **labels:
            Values for every declared label name.

        Returns
        -------
        int
            The observation count (0 when never observed).
        """
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            return int(child["count"]) if child is not None else 0

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate a quantile from the bucket counts.

        Linear interpolation inside the bucket that crosses the target
        rank, the standard ``histogram_quantile`` estimator.  The
        overflow bucket is clamped to its lower bound.

        Parameters
        ----------
        q:
            Quantile in ``[0, 1]`` (0.5 = p50, 0.99 = p99).
        **labels:
            Values for every declared label name.

        Returns
        -------
        float
            The estimated quantile, or ``nan`` with no observations.

        Raises
        ------
        ValueError
            If ``q`` is outside ``[0, 1]``.
        """
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            if child is None:
                if not 0.0 <= q <= 1.0:
                    raise ValueError(
                        f"quantile must be in [0, 1], got {q}"
                    )
                return float("nan")
            return quantile_from_counts(
                self.buckets, child["counts"], child["count"], q
            )


class MetricsRegistry:
    """Named metric families sharing one lock.

    Metric accessors are get-or-create: repeated calls with the same
    name return the same family, and a kind or label mismatch raises —
    the registry is the single source of truth for what each name
    means.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("events_total").inc(5)
    >>> registry.counter("events_total").value()
    5.0
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    @property
    def enabled(self) -> bool:
        """Whether this registry records updates (always True here)."""
        return True

    def _family_locked(
        self, cls, name: str, help_text: str, labelnames: tuple, **kwargs
    ) -> _Metric:
        """Get or create one metric family, validating consistency."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help_text, tuple(labelnames), self._lock,
                         **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} declared labels {metric.labelnames}, "
                f"got {tuple(labelnames)}"
            )
        return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple = ()
    ) -> Counter:
        """Get or create a :class:`Counter` family.

        Parameters
        ----------
        name:
            Metric family name (Prometheus conventions apply).
        help_text:
            One-line description for the ``# HELP`` exposition line.
        labelnames:
            Declared label names (update calls must supply exactly
            these).

        Returns
        -------
        Counter
            The registered family.

        Raises
        ------
        ValueError
            If ``name`` exists with a different kind or labels.
        """
        with self._lock:
            return self._family_locked(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge` family.

        Parameters
        ----------
        name:
            Metric family name.
        help_text:
            One-line description for the ``# HELP`` exposition line.
        labelnames:
            Declared label names.

        Returns
        -------
        Gauge
            The registered family.

        Raises
        ------
        ValueError
            If ``name`` exists with a different kind or labels.
        """
        with self._lock:
            return self._family_locked(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: tuple = (),
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` family.

        Parameters
        ----------
        name:
            Metric family name.
        help_text:
            One-line description for the ``# HELP`` exposition line.
        labelnames:
            Declared label names.
        buckets:
            Finite upper bounds (sorted internally); an implicit
            ``+Inf`` overflow bucket is always appended.

        Returns
        -------
        Histogram
            The registered family.

        Raises
        ------
        ValueError
            If ``name`` exists with a different kind or labels.
        """
        with self._lock:
            return self._family_locked(
                Histogram, name, help_text, labelnames, buckets=buckets
            )

    def snapshot(self) -> dict:
        """JSON-ready dump of every family and child.

        Returns
        -------
        dict
            ``{name: {"kind", "help", "labelnames", ...per-kind
            payload...}}``; histogram children carry ``counts``/``sum``
            /``count`` plus the family's ``buckets``.
        """
        with self._lock:
            out: dict = {}
            for name, metric in sorted(self._metrics.items()):
                entry: dict = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                }
                if isinstance(metric, Histogram):
                    entry["buckets"] = list(metric.buckets)
                    entry["values"] = {
                        key: {
                            "counts": list(child["counts"]),
                            "sum": child["sum"],
                            "count": child["count"],
                        }
                        for key, child in metric._children.items()
                    }
                else:
                    entry["values"] = {
                        key: child[0]
                        for key, child in metric._children.items()
                    }
                out[name] = entry
            return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (last write wins) — the convention shard stitching wants.

        Parameters
        ----------
        snapshot:
            A dump produced by :meth:`snapshot` (possibly from another
            process).

        Raises
        ------
        ValueError
            If a family exists here with an incompatible declaration.
        """
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            labelnames = tuple(entry.get("labelnames", ()))
            help_text = entry.get("help", "")
            with self._lock:
                if kind == "counter":
                    metric = self._family_locked(
                        Counter, name, help_text, labelnames
                    )
                elif kind == "gauge":
                    metric = self._family_locked(
                        Gauge, name, help_text, labelnames
                    )
                elif kind == "histogram":
                    metric = self._family_locked(
                        Histogram, name, help_text, labelnames,
                        buckets=tuple(entry.get("buckets", DEFAULT_BUCKETS)),
                    )
                else:
                    raise ValueError(f"unknown metric kind {kind!r}")
                for key, value in entry.get("values", {}).items():
                    labels = dict(
                        zip(labelnames, json.loads(key))
                    )
                    _, child = metric._child_locked(labels)
                    if kind == "counter":
                        child[0] += value
                    elif kind == "gauge":
                        child[0] = value
                    else:
                        counts = value["counts"]
                        if len(counts) != len(child["counts"]):
                            raise ValueError(
                                f"histogram {name!r}: bucket shape mismatch"
                            )
                        for i, c in enumerate(counts):
                            child["counts"][i] += c
                        child["sum"] += value["sum"]
                        child["count"] += value["count"]

    def reset(self) -> None:
        """Zero every child of every family (families stay declared)."""
        with self._lock:
            for metric in self._metrics.values():
                for key in list(metric._children):
                    metric._children[key] = metric._zero()

    def render_prometheus(self) -> str:
        """Render the Prometheus text exposition format.

        Histogram families expose cumulative ``_bucket`` samples with
        ``le`` labels (ending in ``+Inf``) plus ``_sum`` and ``_count``.

        Returns
        -------
        str
            The exposition body, newline-terminated.
        """
        with self._lock:
            lines: list[str] = []
            for name, metric in sorted(self._metrics.items()):
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for key, child in metric._children.items():
                    pairs = list(zip(metric.labelnames, json.loads(key)))
                    if isinstance(metric, Histogram):
                        cumulative = 0
                        for bound, count in zip(
                            list(metric.buckets) + [float("inf")],
                            child["counts"],
                        ):
                            cumulative += count
                            le = "+Inf" if bound == float("inf") else _fmt(
                                bound
                            )
                            labels = _render_labels(pairs + [("le", le)])
                            lines.append(
                                f"{name}_bucket{labels} {cumulative}"
                            )
                        labels = _render_labels(pairs)
                        lines.append(
                            f"{name}_sum{labels} {_fmt(child['sum'])}"
                        )
                        lines.append(
                            f"{name}_count{labels} {child['count']}"
                        )
                    else:
                        labels = _render_labels(pairs)
                        lines.append(f"{name}{labels} {_fmt(child[0])}")
            return "\n".join(lines) + "\n"


def _render_labels(pairs: list) -> str:
    """Render ``{a="x",b="y"}`` (empty string with no labels)."""
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


class _NullUpdater:
    """No-op stand-in for any metric family while metrics are disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Discard a counter/gauge increment (disabled path)."""
        return None

    def set(self, value: float, **labels: str) -> None:
        """Discard a gauge observation (disabled path)."""
        return None

    def observe(self, value: float, **labels: str) -> None:
        """Discard a histogram observation (disabled path)."""
        return None

    def value(self, **labels: str) -> float:
        """Always 0.0 (disabled path)."""
        return 0.0

    def count(self, **labels: str) -> int:
        """Always 0 (disabled path)."""
        return 0

    def quantile(self, q: float, **labels: str) -> float:
        """Always ``nan`` (disabled path)."""
        return float("nan")


_NULL_UPDATER = _NullUpdater()


class NullMetrics:
    """Disabled-metrics registry: every accessor returns a shared no-op.

    Examples
    --------
    >>> NULL_METRICS.counter("anything").inc()
    >>> NULL_METRICS.snapshot()
    {}
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        """Whether this registry records updates (always False here)."""
        return False

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple = ()) -> _NullUpdater:
        """Return the shared no-op family.

        Parameters
        ----------
        name, help_text, labelnames:
            Ignored.

        Returns
        -------
        _NullUpdater
            The process-wide no-op singleton.
        """
        return _NULL_UPDATER

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple = ()) -> _NullUpdater:
        """Return the shared no-op family.

        Parameters
        ----------
        name, help_text, labelnames:
            Ignored.

        Returns
        -------
        _NullUpdater
            The process-wide no-op singleton.
        """
        return _NULL_UPDATER

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple = (),
                  buckets: tuple = DEFAULT_BUCKETS) -> _NullUpdater:
        """Return the shared no-op family.

        Parameters
        ----------
        name, help_text, labelnames, buckets:
            Ignored.

        Returns
        -------
        _NullUpdater
            The process-wide no-op singleton.
        """
        return _NULL_UPDATER

    def snapshot(self) -> dict:
        """Always empty.

        Returns
        -------
        dict
            ``{}``.
        """
        return {}

    def merge(self, snapshot: dict) -> None:
        """Discard a snapshot (disabled path).

        Parameters
        ----------
        snapshot:
            Ignored.
        """
        return None

    def reset(self) -> None:
        """No-op (disabled path)."""
        return None

    def render_prometheus(self) -> str:
        """Empty exposition body.

        Returns
        -------
        str
            ``""``.
        """
        return ""


#: Shared disabled-registry singleton.
NULL_METRICS = NullMetrics()
