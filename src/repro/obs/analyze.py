"""Trace analytics: turn raw span streams into aggregates and answers.

PR 8 made every layer *emit* spans; this module makes them *legible*.
It consumes either a live :meth:`repro.obs.Tracer.records` list or a
Chrome-trace JSON file written by ``--trace`` (:func:`load_trace`
round-trips the export) and computes:

- per-name and per-category aggregates with **self time** (a span's
  wall clock minus its direct children's — the time the span itself
  burned, not what it delegated), via :func:`aggregate`;
- the **critical path** through the span hierarchy
  (:func:`critical_path`): starting from the top-level spans of the
  busiest thread, descend into the longest child at every level.  The
  per-entry ``path_seconds`` attribute each span's un-delegated share
  of the path, so the entries sum exactly to the trace's top-level
  wall clock — the invariant ``tests/obs/test_analyze.py`` pins;
- trace **diffs** (:func:`diff_traces`): wall-clock deltas between two
  runs attributed to span names by self time, so nested spans are not
  double-counted and the per-name deltas sum to the total delta when
  both traces cover the same span names;
- a JSON-ready top-N **report** (:func:`build_report`) and text
  renderers (:func:`render_report`, :func:`render_diff`) behind
  ``repro obs report`` / ``repro obs diff``.

Everything here is read-only over finished spans: no tracer state is
mutated, so analytics can run against a live tracer mid-flight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.trace import SpanRecord

__all__ = [
    "CriticalPath",
    "aggregate",
    "build_report",
    "critical_path",
    "diff_traces",
    "load_trace",
    "render_diff",
    "render_report",
    "wall_clock",
]

#: Containment slack absorbing the ns-level rounding of the Chrome
#: export (timestamps are rounded to 1e-3 microseconds).
_EPS = 2e-9


def load_trace(path) -> list:
    """Load a Chrome-trace JSON file back into span records.

    Only complete (``"ph": "X"``) events are considered — exactly what
    :meth:`repro.obs.Tracer.write_chrome_trace` emits.  Depth and
    parent links are not stored in the Chrome format, so they are
    reconstructed per thread from interval containment; the result is
    directly usable by every analytics function in this module.

    Parameters
    ----------
    path:
        Path of a ``--trace`` output file (or any Chrome-trace JSON).

    Returns
    -------
    list
        :class:`~repro.obs.SpanRecord` objects with reconstructed
        ``depth``/``parent`` fields.

    Raises
    ------
    ValueError
        If the file is not valid JSON or lacks a ``traceEvents`` list.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    events = document.get("traceEvents") if isinstance(document, dict) else None
    if not isinstance(events, list):
        raise ValueError(f"{path}: no 'traceEvents' list (not a trace file?)")
    records = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        records.append(
            SpanRecord(
                str(event.get("name", "")),
                str(event.get("cat", "")),
                float(event.get("ts", 0.0)) / 1e6,
                float(event.get("dur", 0.0)) / 1e6,
                int(event.get("tid", 0)),
                0,
                None,
                dict(event.get("args") or {}),
            )
        )
    for roots in _forest(records).values():
        _assign_depths(roots, 0, None)
    return records


@dataclass
class _Node:
    """One span in the reconstructed containment forest (internal)."""

    record: SpanRecord
    children: list = field(default_factory=list)

    @property
    def end(self) -> float:
        """The span's end timestamp (start plus duration)."""
        return self.record.start + self.record.duration


def _forest(records) -> dict:
    """Reconstruct the per-thread span forest from interval containment.

    Parameters
    ----------
    records:
        Finished :class:`~repro.obs.SpanRecord` objects (any order).

    Returns
    -------
    dict
        ``tid -> [root _Node, ...]`` with roots in start order.
    """
    by_tid: dict[int, list] = {}
    for record in records:
        by_tid.setdefault(record.tid, []).append(record)
    forests: dict[int, list] = {}
    for tid, group in by_tid.items():
        group.sort(key=lambda r: (r.start, -r.duration))
        roots: list = []
        stack: list = []
        for record in group:
            node = _Node(record)
            while stack and not (
                record.start >= stack[-1].record.start - _EPS
                and record.start + record.duration <= stack[-1].end + _EPS
            ):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        forests[tid] = roots
    return forests


def _assign_depths(nodes, depth: int, parent: str | None) -> None:
    """Stamp reconstructed depth/parent links onto loaded records."""
    for node in nodes:
        node.record.depth = depth
        node.record.parent = parent
        _assign_depths(node.children, depth + 1, node.record.name)


def wall_clock(records) -> float:
    """Total top-level wall-clock seconds across every thread.

    The sum of root-span durations per thread, summed over threads —
    for a single-threaded trace this is simply the end-to-end wall
    time; for merged shard traces it is the *aggregate* busy time of
    all lanes.

    Parameters
    ----------
    records:
        Finished span records (live or loaded).

    Returns
    -------
    float
        Seconds covered by top-level spans.
    """
    return sum(
        root.record.duration
        for roots in _forest(records).values()
        for root in roots
    )


def aggregate(records) -> dict:
    """Per-name aggregates with total and self time.

    Self time is a span's duration minus the summed durations of its
    *direct* children, so a loop driver that spends all its time in
    sub-stages aggregates near-zero self time while its children carry
    the cost.  Summed over all names, self time equals the top-level
    wall clock (up to export rounding).

    Parameters
    ----------
    records:
        Finished span records (live or loaded).

    Returns
    -------
    dict
        ``{name: {"category", "calls", "total_seconds",
        "self_seconds", "max_seconds"}}``, insertion-ordered by first
        appearance.
    """
    stats: dict[str, dict] = {}

    def visit(node: _Node) -> None:
        record = node.record
        entry = stats.get(record.name)
        if entry is None:
            entry = {
                "category": record.category,
                "calls": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "max_seconds": 0.0,
            }
            stats[record.name] = entry
        child_seconds = sum(c.record.duration for c in node.children)
        entry["calls"] += 1
        entry["total_seconds"] += record.duration
        entry["self_seconds"] += record.duration - child_seconds
        entry["max_seconds"] = max(entry["max_seconds"], record.duration)
        for child in node.children:
            visit(child)

    for roots in _forest(records).values():
        for root in roots:
            visit(root)
    return stats


@dataclass
class CriticalPath:
    """The longest-child descent through one thread's span forest.

    Attributes
    ----------
    tid:
        The analyzed thread (the one with the largest top-level wall
        clock — on merged multi-process traces, the busiest lane).
    total_seconds:
        Top-level wall clock of that thread; the path entries'
        ``path_seconds`` sum to exactly this value.
    entries:
        Path steps in execution order; each is a dict with ``name``,
        ``category``, ``depth``, ``seconds`` (the span's full
        duration) and ``path_seconds`` (the span's un-delegated share:
        duration minus the longest child's duration).
    """

    tid: int
    total_seconds: float
    entries: list


def critical_path(records) -> CriticalPath:
    """Extract the critical path through the span hierarchy.

    Walks the busiest thread's top-level spans in start order and, at
    every level, descends into the child with the largest duration.
    Each visited span contributes ``duration - longest_child_duration``
    as ``path_seconds``, so the path is a disjoint cover of the
    top-level wall clock: optimizing the named spans by their
    ``path_seconds`` is the shortest route to a faster run.

    Parameters
    ----------
    records:
        Finished span records (live or loaded).

    Returns
    -------
    CriticalPath
        The path; empty (``total_seconds == 0``) on an empty trace.
    """
    forests = _forest(records)
    if not forests:
        return CriticalPath(tid=0, total_seconds=0.0, entries=[])
    totals = {
        tid: sum(root.record.duration for root in roots)
        for tid, roots in forests.items()
    }
    tid = max(sorted(totals), key=lambda t: totals[t])
    entries: list = []
    for root in forests[tid]:
        node = root
        while True:
            longest = max(
                node.children, key=lambda c: c.record.duration, default=None
            )
            delegated = longest.record.duration if longest is not None else 0.0
            entries.append(
                {
                    "name": node.record.name,
                    "category": node.record.category,
                    "depth": node.record.depth,
                    "seconds": node.record.duration,
                    "path_seconds": node.record.duration - delegated,
                }
            )
            if longest is None:
                break
            node = longest
    return CriticalPath(tid=tid, total_seconds=totals[tid], entries=entries)


def diff_traces(a_records, b_records) -> dict:
    """Attribute the wall-clock delta between two traces to span names.

    Rows are keyed by span name and compare self time (not total), so
    nested spans are never double-counted: over a shared name set the
    per-name ``self_delta`` values sum to the wall-clock delta.  Names
    present in only one trace are kept and marked, which is how a diff
    across versions shows stages that appeared or disappeared.

    Parameters
    ----------
    a_records:
        Baseline trace (live records or :func:`load_trace` output).
    b_records:
        Comparison trace.

    Returns
    -------
    dict
        ``{"wall_clock_a", "wall_clock_b", "wall_clock_delta",
        "rows": [...]}`` with one row per span name — ``status`` is
        ``"both"``, ``"only_a"`` or ``"only_b"`` — sorted by
        descending absolute ``self_delta``.
    """
    agg_a = aggregate(a_records)
    agg_b = aggregate(b_records)
    names = list(agg_a) + [n for n in agg_b if n not in agg_a]
    rows = []
    for name in names:
        a = agg_a.get(name)
        b = agg_b.get(name)
        status = "both" if a and b else ("only_a" if a else "only_b")
        rows.append(
            {
                "name": name,
                "status": status,
                "calls_a": a["calls"] if a else 0,
                "calls_b": b["calls"] if b else 0,
                "total_a": a["total_seconds"] if a else 0.0,
                "total_b": b["total_seconds"] if b else 0.0,
                "self_a": a["self_seconds"] if a else 0.0,
                "self_b": b["self_seconds"] if b else 0.0,
                "self_delta": (b["self_seconds"] if b else 0.0)
                - (a["self_seconds"] if a else 0.0),
            }
        )
    rows.sort(key=lambda row: (-abs(row["self_delta"]), row["name"]))
    wall_a = wall_clock(a_records)
    wall_b = wall_clock(b_records)
    return {
        "wall_clock_a": wall_a,
        "wall_clock_b": wall_b,
        "wall_clock_delta": wall_b - wall_a,
        "rows": rows,
    }


def build_report(records, top: int = 20) -> dict:
    """Assemble the JSON-ready analytics report of one trace.

    Parameters
    ----------
    records:
        Finished span records (live or loaded).
    top:
        Number of names kept in the ``by_name`` section (ranked by
        total seconds; the full name count is reported alongside).

    Returns
    -------
    dict
        ``{"span_count", "wall_clock_seconds", "tids", "by_name",
        "by_category", "critical_path"}`` — the shape ``repro obs
        report --format json`` emits.
    """
    stats = aggregate(records)
    by_name = sorted(
        (
            {"name": name, **entry}
            for name, entry in stats.items()
        ),
        key=lambda row: (-row["total_seconds"], row["name"]),
    )
    by_category: dict[str, dict] = {}
    for entry in stats.values():
        category = entry["category"] or "(none)"
        bucket = by_category.setdefault(
            category, {"calls": 0, "total_seconds": 0.0, "self_seconds": 0.0}
        )
        bucket["calls"] += entry["calls"]
        bucket["total_seconds"] += entry["total_seconds"]
        bucket["self_seconds"] += entry["self_seconds"]
    path = critical_path(records)
    tids = {
        str(tid): sum(root.record.duration for root in roots)
        for tid, roots in sorted(_forest(records).items())
    }
    return {
        "span_count": len(list(records)),
        "name_count": len(stats),
        "wall_clock_seconds": wall_clock(records),
        "tids": tids,
        "by_name": by_name[: max(0, int(top))],
        "by_category": by_category,
        "critical_path": {
            "tid": path.tid,
            "total_seconds": path.total_seconds,
            "entries": path.entries,
        },
    }


def _fmt_s(value: float) -> str:
    """Fixed-width seconds for the text tables."""
    return f"{value:10.6f}"


def render_report(report: dict) -> str:
    """Render a :func:`build_report` dict as an aligned text report.

    Parameters
    ----------
    report:
        The dict produced by :func:`build_report`.

    Returns
    -------
    str
        Multi-section plain text (totals, top spans, categories,
        critical path) — what ``repro obs report`` prints.
    """
    lines = [
        f"spans: {report['span_count']}  names: {report['name_count']}  "
        f"threads: {len(report['tids'])}  "
        f"wall clock: {report['wall_clock_seconds']:.6f}s",
        "",
        "top spans by total time (self = total minus direct children):",
        f"  {'name':<36} {'calls':>6} {'total_s':>10} {'self_s':>10}",
    ]
    for row in report["by_name"]:
        lines.append(
            f"  {row['name']:<36} {row['calls']:>6} "
            f"{_fmt_s(row['total_seconds'])} {_fmt_s(row['self_seconds'])}"
        )
    lines.append("")
    lines.append("by category:")
    for category, bucket in sorted(report["by_category"].items()):
        lines.append(
            f"  {category:<12} calls={bucket['calls']:<7} "
            f"total={bucket['total_seconds']:.6f}s "
            f"self={bucket['self_seconds']:.6f}s"
        )
    path = report["critical_path"]
    lines.append("")
    lines.append(
        f"critical path (tid {path['tid']}, "
        f"{path['total_seconds']:.6f}s total):"
    )
    for entry in path["entries"]:
        indent = "  " * (int(entry["depth"]) + 1)
        lines.append(
            f"{indent}{entry['name']}  "
            f"[{entry['path_seconds']:.6f}s on path / "
            f"{entry['seconds']:.6f}s span]"
        )
    return "\n".join(lines)


def render_diff(diff: dict, top: int = 20) -> str:
    """Render a :func:`diff_traces` dict as an aligned text table.

    Parameters
    ----------
    diff:
        The dict produced by :func:`diff_traces`.
    top:
        Number of rows shown (largest absolute self-time delta first).

    Returns
    -------
    str
        Plain text — what ``repro obs diff`` prints.
    """
    delta = diff["wall_clock_delta"]
    sign = "+" if delta >= 0 else ""
    lines = [
        f"wall clock: {diff['wall_clock_a']:.6f}s -> "
        f"{diff['wall_clock_b']:.6f}s ({sign}{delta:.6f}s)",
        "",
        f"  {'name':<36} {'status':<7} {'self_a_s':>10} {'self_b_s':>10} "
        f"{'delta_s':>10}",
    ]
    for row in diff["rows"][: max(0, int(top))]:
        lines.append(
            f"  {row['name']:<36} {row['status']:<7} "
            f"{_fmt_s(row['self_a'])} {_fmt_s(row['self_b'])} "
            f"{row['self_delta']:+10.6f}"
        )
    remaining = len(diff["rows"]) - max(0, int(top))
    if remaining > 0:
        lines.append(f"  ... {remaining} more span names")
    return "\n".join(lines)
