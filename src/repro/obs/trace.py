"""Hierarchical span tracer with Chrome-trace-event export.

:class:`Span` is the repo's single timing primitive: a context manager
measuring wall time with :func:`time.perf_counter`
(``repro.utils.timing.Timer`` is a thin alias).  A bare ``Span()``
records nothing — it is exactly the old ``Timer``.  A span obtained
from :meth:`Tracer.span` additionally reports itself to the tracer on
exit: the tracer keeps a per-thread open-span stack (so nesting is
captured even across helper calls), assigns depths and parent ids, and
exports the finished spans as Chrome trace events — a JSON file
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

The :data:`NULL_TRACER` singleton hands out plain unreported spans, so
instrumented code always writes ``with get_tracer().span(...) as s:``
and pays only the perf-counter pair when tracing is disabled.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["NULL_TRACER", "NullTracer", "Span", "SpanRecord", "Tracer"]


class Span:
    """Context manager measuring wall time, optionally reported.

    Drop-in superset of the pre-observability ``Timer``: ``elapsed``
    holds the last interval, :meth:`restart`/:meth:`lap` support
    lap-style reuse.  Spans handed out by a :class:`Tracer` also carry
    a name, a category and annotations, and are recorded on exit —
    including when the body raises, because ``__exit__`` always runs.

    Examples
    --------
    >>> with Span() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("name", "category", "elapsed", "_start", "_tracer", "_args")

    def __init__(
        self,
        name: str = "",
        category: str = "",
        tracer: "Tracer | None" = None,
        args: dict | None = None,
    ) -> None:
        self.name = name
        self.category = category
        self.elapsed: float = 0.0
        self._start: float | None = None
        self._tracer = tracer
        self._args = dict(args) if args else None

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
        if self._tracer is not None:
            self._tracer._pop(self)

    def restart(self) -> None:
        """Reset the start time and clear any previously stored interval.

        Without clearing, lap-style reuse (``restart()`` followed by an
        exception or an early exit before ``__exit__``) would report
        the *previous* interval's ``elapsed``.
        """
        self._start = time.perf_counter()
        self.elapsed = 0.0

    def lap(self) -> float:
        """Seconds since start/:meth:`restart` without stopping.

        Returns
        -------
        float
            The running interval.

        Raises
        ------
        RuntimeError
            If the span was never started.
        """
        if self._start is None:
            raise RuntimeError("Timer was never started")
        return time.perf_counter() - self._start

    def annotate(self, counters: dict | None = None, **kv: object) -> None:
        """Attach key/value payload shown in the trace viewer's args.

        Parameters
        ----------
        counters:
            Optional mapping folded in (the shape stage bodies return).
        **kv:
            Additional individual annotations.
        """
        if self._tracer is None:
            return
        if self._args is None:
            self._args = {}
        if counters:
            self._args.update(counters)
        if kv:
            self._args.update(kv)


class SpanRecord:
    """One finished span as stored by the tracer.

    Attributes
    ----------
    name, category:
        The span's identity (categories: ``stage``, ``kernel``,
        ``solver``, ``stream``, ``serve``, ...).
    start, duration:
        Seconds relative to the tracer's epoch / wall seconds.
    tid:
        Small integer thread id (stable within one tracer).
    depth:
        Nesting depth on its thread (0 = top level).
    parent:
        Name of the enclosing open span, or ``None``.
    args:
        Annotations attached via :meth:`Span.annotate`.
    """

    __slots__ = ("name", "category", "start", "duration", "tid", "depth",
                 "parent", "args")

    def __init__(self, name, category, start, duration, tid, depth, parent,
                 args) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.duration = duration
        self.tid = tid
        self.depth = depth
        self.parent = parent
        self.args = args


class Tracer:
    """Collects finished spans and exports Chrome trace events.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner") as inner:
    ...         pass
    >>> [(r.name, r.depth) for r in tracer.records()]
    [('inner', 1), ('outer', 0)]
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._records: list[SpanRecord] = []
        self._tids: dict[int, int] = {}
        self._next_tid = 0
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        """Whether spans from this tracer are recorded (always True)."""
        return True

    def now(self) -> float:
        """Seconds since this tracer's epoch (the trace's time origin).

        Returns
        -------
        float
            Current epoch-relative timestamp, usable as a
            :meth:`merge` offset.
        """
        return time.perf_counter() - self._epoch

    def span(
        self, name: str, category: str = "", **args: object
    ) -> Span:
        """Create a span reporting to this tracer on exit.

        Parameters
        ----------
        name:
            Span name (pipeline stages use their profile names, so the
            trace nests ``densify.embedding`` under ``densify``).
        category:
            Coarse subsystem tag used for filtering (``stage``,
            ``kernel``, ``solver``, ``stream``, ``serve``).
        **args:
            Initial annotations (more via :meth:`Span.annotate`).

        Returns
        -------
        Span
            An *unstarted* span; use it as ``with tracer.span(...)``.
        """
        return Span(name, category=category, tracer=self, args=args or None)

    def _stack(self) -> list:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            # Thread-local by construction; no lock needed.
            self._local.stack = stack  # repro-lint: disable=R301
        return stack

    def _push(self, span: Span) -> None:
        """Register a span as opened on the current thread."""
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        """Record a finished span (tolerates out-of-order exits)."""
        stack = self._stack()
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        depth = len(stack)
        parent = stack[-1].name if stack else None
        start = (span._start or 0.0) - self._epoch
        ident = threading.get_ident()
        with self._lock:
            tid = self._tid_locked(ident)
            self._records.append(
                SpanRecord(
                    span.name, span.category, start, span.elapsed, tid,
                    depth, parent, dict(span._args) if span._args else {},
                )
            )

    def _tid_locked(self, ident: int) -> int:
        """Small stable tid for a thread ident (caller holds the lock)."""
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._next_tid
            self._tids[ident] = tid
            self._next_tid += 1
        return tid

    def merge(self, records, offset: float = 0.0) -> None:
        """Absorb finished spans recorded by another tracer.

        This is how shard-parallel runs produce one coherent trace: a
        process-pool worker traces into its own :class:`Tracer` and
        ships ``tracer.records()`` back; the parent merges them here.
        Foreign thread ids are remapped onto fresh tids so merged
        lanes never collide with this tracer's own threads.

        Parameters
        ----------
        records:
            :class:`SpanRecord` objects from another tracer.
        offset:
            Seconds added to every record's start, aligning the foreign
            epoch with this tracer's (e.g. the epoch-relative start of
            the parallel region that spawned the worker).
        """
        with self._lock:
            remap: dict[int, int] = {}
            for record in records:
                tid = remap.get(record.tid)
                if tid is None:
                    tid = self._next_tid
                    remap[record.tid] = tid
                    self._next_tid += 1
                self._records.append(
                    SpanRecord(
                        record.name, record.category,
                        record.start + offset, record.duration, tid,
                        record.depth, record.parent, dict(record.args),
                    )
                )

    def records(self, category: str | None = None) -> list:
        """Finished spans, in completion order.

        Parameters
        ----------
        category:
            Optional filter; only spans with this category.

        Returns
        -------
        list
            :class:`SpanRecord` objects (a copy — safe to mutate).
        """
        with self._lock:
            if category is None:
                return list(self._records)
            return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        """Drop every recorded span (open spans are unaffected)."""
        with self._lock:
            self._records.clear()

    def chrome_trace(self) -> dict:
        """Build the Chrome trace-event representation.

        Complete (``"ph": "X"``) events with microsecond timestamps —
        the JSON shape Perfetto and ``chrome://tracing`` load directly.

        Returns
        -------
        dict
            ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
        """
        with self._lock:
            events = [
                {
                    "name": record.name,
                    "cat": record.category or "repro",
                    "ph": "X",
                    "ts": round(record.start * 1e6, 3),
                    "dur": round(record.duration * 1e6, 3),
                    "pid": 0,
                    "tid": record.tid,
                    "args": record.args,
                }
                for record in self._records
            ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Serialize :meth:`chrome_trace` to a JSON file.

        Parameters
        ----------
        path:
            Destination file path (overwritten).
        """
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)


class NullTracer:
    """Disabled tracer: hands out plain, unreported spans.

    Examples
    --------
    >>> with NULL_TRACER.span("ignored") as s:
    ...     pass
    >>> s.elapsed >= 0.0
    True
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        """Whether spans from this tracer are recorded (always False)."""
        return False

    def now(self) -> float:
        """Epoch-relative timestamp (always 0.0 on the disabled path).

        Returns
        -------
        float
            ``0.0``.
        """
        return 0.0

    def span(self, name: str, category: str = "", **args: object) -> Span:
        """Create a plain span (timed, never recorded).

        Parameters
        ----------
        name:
            Span name (kept so callers can read it back).
        category:
            Ignored beyond storage.
        **args:
            Ignored.

        Returns
        -------
        Span
            An unreported span.
        """
        return Span(name, category=category)

    def merge(self, records, offset: float = 0.0) -> None:
        """No-op (disabled path).

        Parameters
        ----------
        records, offset:
            Ignored.
        """
        return None

    def records(self, category: str | None = None) -> list:
        """Always empty.

        Parameters
        ----------
        category:
            Ignored.

        Returns
        -------
        list
            ``[]``.
        """
        return []

    def clear(self) -> None:
        """No-op (disabled path)."""
        return None

    def chrome_trace(self) -> dict:
        """Empty trace document.

        Returns
        -------
        dict
            ``{"traceEvents": [], "displayTimeUnit": "ms"}``.
        """
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: Shared disabled-tracer singleton.
NULL_TRACER = NullTracer()
