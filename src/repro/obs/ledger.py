"""Run ledger and benchmark regression gate.

Two complementary durable records of "what happened when we ran":

- :class:`RunLedger` — an append-only JSONL file with one
  :class:`RunRecord` per run: the configuration knobs, seed, σ²
  outcome, edge counts, per-stage timings
  (:meth:`~repro.core.profile.PipelineProfile.as_dict` shape) and an
  :func:`environment_fingerprint` (git commit, python/platform, numba
  availability) so cross-run diffs can explain outliers.  The
  ``sparsify``/``stream`` CLIs append behind ``--ledger`` and the
  benchmark ``record`` fixture mirrors every ``BENCH_*.json`` record
  into ``BENCH_LEDGER.jsonl``; ``repro obs runs list/show/diff``
  consumes the file.
- the **regression gate** (:func:`check_regressions`) — compares the
  newest record of every ``BENCH_<name>.json`` trajectory against a
  robust baseline (median + MAD over prior records at the same scale
  and smoke mode) and flags per-metric regressions beyond a
  tolerance.  ``repro obs check-regressions benchmarks/`` exits
  non-zero on findings, which is what the CI ``perf-regression`` job
  gates on.

Only metrics with a recognizable *direction* are gated
(:func:`metric_direction`): timing-flavoured names (``*_s``, ``*_ns``,
``latency``, ``overhead``) regress upward, rate-flavoured names
(``speedup``, ``throughput``, ``qps``) regress downward, and anything
else (sizes, counts) is informational only.
"""

from __future__ import annotations

import datetime
import functools
import json
import platform
import statistics
import subprocess
import warnings
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "GateReport",
    "Regression",
    "RunLedger",
    "RunRecord",
    "check_bench_file",
    "check_regressions",
    "diff_runs",
    "environment_fingerprint",
    "metric_direction",
]

#: MAD-to-sigma scale factor for normally distributed noise.
_MAD_SIGMA = 1.4826


@functools.lru_cache(maxsize=1)
def environment_fingerprint() -> dict:
    """Fingerprint the execution environment for cross-run comparisons.

    Cached per process (the git subprocess is not free).  Every field
    degrades gracefully — a missing git binary or a non-repo working
    directory yields ``"unknown"`` rather than an exception, so the
    ledger keeps working in exported tarballs.

    Returns
    -------
    dict
        ``git_commit``, ``python``, ``implementation``, ``platform``,
        ``machine``, ``numpy``, ``scipy`` and ``numba`` (availability
        flag, not a version — numba is an optional dependency).
    """
    import importlib.util

    import numpy
    import scipy

    commit = "unknown"
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if proc.returncode == 0:
            commit = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "git_commit": commit,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": importlib.util.find_spec("numba") is not None,
    }


@dataclass
class RunRecord:
    """One ledgered run: what was asked, what came out, where it ran.

    Attributes
    ----------
    kind:
        Run family (``"sparsify"``, ``"stream"``, ``"benchmark"``).
    recorded_at:
        UTC ISO timestamp stamped by :meth:`capture`.
    config:
        The knobs that shaped the run (σ² target, tree method, worker
        count, kernel backend, batch size, ...).
    seed:
        The run's RNG seed (``None`` for runs without one).
    metrics:
        Numeric outcomes: σ² estimate, edge counts, wall-clock totals,
        benchmark headline numbers.
    stages:
        Per-stage timings/counters in the
        :meth:`~repro.core.profile.PipelineProfile.as_dict` shape
        (empty when the run had no pipeline profile).
    env:
        The :func:`environment_fingerprint` of the recording process.
    """

    kind: str
    recorded_at: str = ""
    config: dict = field(default_factory=dict)
    seed: int | None = None
    metrics: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    env: dict = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        kind: str,
        config: dict | None = None,
        seed: int | None = None,
        metrics: dict | None = None,
        stages: dict | None = None,
    ) -> "RunRecord":
        """Build a record stamped with now-UTC and the live environment.

        Parameters
        ----------
        kind:
            Run family (``"sparsify"``, ``"stream"``, ``"benchmark"``).
        config:
            Configuration knobs of the run.
        seed:
            RNG seed, when the run had one.
        metrics:
            Numeric outcomes.
        stages:
            Optional per-stage profile snapshot.

        Returns
        -------
        RunRecord
            The populated record, ready for :meth:`RunLedger.append`.
        """
        return cls(
            kind=str(kind),
            recorded_at=datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            config=dict(config or {}),
            seed=None if seed is None else int(seed),
            metrics=dict(metrics or {}),
            stages=dict(stages or {}),
            env=environment_fingerprint(),
        )

    @classmethod
    def from_result(
        cls, result, config: dict | None = None, seed: int | None = None
    ) -> "RunRecord":
        """Capture a ``sparsify`` run from its :class:`SparsifyResult`.

        Parameters
        ----------
        result:
            A :class:`repro.sparsify.SparsifyResult` (sharded results
            work too — they expose the same surface).
        config:
            The CLI/front-end knobs that produced it.
        seed:
            The run's seed.

        Returns
        -------
        RunRecord
            ``kind="sparsify"`` with σ², edge counts and per-stage
            timings filled in.
        """
        metrics = {
            "num_vertices": int(result.graph.n),
            "host_edges": int(result.graph.num_edges),
            "sparsifier_edges": int(result.sparsifier.num_edges),
            "sigma2_target": float(result.sigma2_target),
            "sigma2_estimate": float(result.sigma2_estimate),
            "converged": bool(result.converged),
            "tree_seconds": float(result.tree_seconds),
            "densify_seconds": float(result.densify_seconds),
        }
        stages = result.profile.as_dict() if result.profile else {}
        return cls.capture(
            "sparsify", config=config, seed=seed, metrics=metrics,
            stages=stages,
        )

    def as_dict(self) -> dict:
        """JSON-ready dict (one ledger line).

        Returns
        -------
        dict
            All fields, plainly.
        """
        return {
            "kind": self.kind,
            "recorded_at": self.recorded_at,
            "config": dict(self.config),
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "stages": dict(self.stages),
            "env": dict(self.env),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Rebuild a record from one parsed ledger line.

        Parameters
        ----------
        payload:
            A dict in the :meth:`as_dict` shape (missing keys default).

        Returns
        -------
        RunRecord
            The reconstructed record.
        """
        seed = payload.get("seed")
        return cls(
            kind=str(payload.get("kind", "unknown")),
            recorded_at=str(payload.get("recorded_at", "")),
            config=dict(payload.get("config", {})),
            seed=None if seed is None else int(seed),
            metrics=dict(payload.get("metrics", {})),
            stages=dict(payload.get("stages", {})),
            env=dict(payload.get("env", {})),
        )

    def summary(self) -> str:
        """One-line digest for ``repro obs runs list``.

        Returns
        -------
        str
            Timestamp, kind, seed and the headline metrics.
        """
        highlights = []
        for key in ("sigma2_estimate", "sparsifier_edges", "host_edges"):
            value = self.metrics.get(key)
            if isinstance(value, (int, float)):
                highlights.append(f"{key}={value:g}")
        extra = "  ".join(highlights)
        seed = "-" if self.seed is None else str(self.seed)
        return (
            f"{self.recorded_at or '(no timestamp)':<25} {self.kind:<10} "
            f"seed={seed:<6} {extra}"
        )


class RunLedger:
    """Append-only JSONL ledger of :class:`RunRecord` entries.

    Parameters
    ----------
    path:
        The ledger file (created with parents on first append).

    Examples
    --------
    >>> import tempfile, pathlib
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "runs.jsonl"
    >>> ledger = RunLedger(path)
    >>> ledger.append(RunRecord.capture("sparsify", seed=0))
    >>> len(ledger.records())
    1
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> None:
        """Append one record as a single JSONL line.

        Parameters
        ----------
        record:
            The record to persist.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.as_dict()) + "\n")

    def records(self) -> list:
        """All parseable records, in file order.

        Corrupt lines are skipped with a warning rather than
        destroying access to the rest of the trajectory.

        Returns
        -------
        list
            :class:`RunRecord` objects (empty for a missing file).
        """
        if not self.path.exists():
            return []
        out: list = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{self.path}:{number}: skipping corrupt ledger "
                        f"line", stacklevel=2,
                    )
                    continue
                if isinstance(payload, dict):
                    out.append(RunRecord.from_dict(payload))
        return out

    def __len__(self) -> int:
        return len(self.records())


def diff_runs(a: RunRecord, b: RunRecord) -> dict:
    """Structured comparison of two ledgered runs.

    Parameters
    ----------
    a:
        Baseline record.
    b:
        Comparison record.

    Returns
    -------
    dict
        ``config``/``env`` sections list keys whose values differ
        (``{key: [a_value, b_value]}``); ``metrics`` carries numeric
        deltas; ``stages`` compares per-stage seconds.
    """
    def changed(left: dict, right: dict) -> dict:
        keys = list(left) + [k for k in right if k not in left]
        return {
            key: [left.get(key), right.get(key)]
            for key in keys
            if left.get(key) != right.get(key)
        }

    metric_keys = list(a.metrics) + [
        k for k in b.metrics if k not in a.metrics
    ]
    metrics = {}
    for key in metric_keys:
        va, vb = a.metrics.get(key), b.metrics.get(key)
        entry: dict = {"a": va, "b": vb}
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                and not isinstance(va, bool) and not isinstance(vb, bool):
            entry["delta"] = vb - va
        if va != vb:
            metrics[key] = entry
    stage_keys = list(a.stages) + [k for k in b.stages if k not in a.stages]
    stages = {}
    for key in stage_keys:
        sa = float(a.stages.get(key, {}).get("seconds", 0.0))
        sb = float(b.stages.get(key, {}).get("seconds", 0.0))
        stages[key] = {"a_seconds": sa, "b_seconds": sb, "delta": sb - sa}
    return {
        "kind": [a.kind, b.kind],
        "recorded_at": [a.recorded_at, b.recorded_at],
        "config": changed(a.config, b.config),
        "env": changed(a.env, b.env),
        "metrics": metrics,
        "stages": stages,
    }


# ----------------------------------------------------------------------
# Regression gate over BENCH_<name>.json trajectories
# ----------------------------------------------------------------------

def metric_direction(name: str) -> str | None:
    """Classify which way a benchmark metric regresses.

    Parameters
    ----------
    name:
        The metric key from a ``BENCH_*.json`` record.

    Returns
    -------
    str or None
        ``"up_is_bad"`` for timing-flavoured metrics, ``"down_is_bad"``
        for rate-flavoured ones, ``None`` for ungated metrics (sizes,
        counts, flags).
    """
    lowered = name.lower()
    if any(tag in lowered for tag in ("speedup", "throughput", "qps")):
        return "down_is_bad"
    if (
        lowered.endswith(("_s", "_ns", "_ms", "_seconds"))
        or "seconds" in lowered
        or "latency" in lowered
        or "overhead" in lowered
        or lowered.startswith(("p50", "p99"))
        or lowered.endswith(("p50", "p99"))
    ):
        return "up_is_bad"
    return None


@dataclass(frozen=True)
class Regression:
    """One flagged metric regression.

    Attributes
    ----------
    file:
        The ``BENCH_*.json`` file name.
    metric:
        The regressed metric key.
    value:
        The newest record's value.
    baseline:
        The robust baseline (median over comparable prior records).
    allowance:
        The tolerated deviation (``max(rel_tolerance·|median|,
        mad_k·1.4826·MAD)``).
    direction:
        ``"up_is_bad"`` or ``"down_is_bad"``.
    history:
        Number of prior records the baseline was computed from.
    """

    file: str
    metric: str
    value: float
    baseline: float
    allowance: float
    direction: str
    history: int

    def describe(self) -> str:
        """One-line human rendering of the finding.

        Returns
        -------
        str
            File, metric, value-vs-baseline and the allowance.
        """
        arrow = ">" if self.direction == "up_is_bad" else "<"
        return (
            f"{self.file}: {self.metric} = {self.value:g} {arrow} baseline "
            f"{self.baseline:g} beyond allowance {self.allowance:g} "
            f"(n={self.history} prior runs)"
        )


@dataclass
class GateReport:
    """Outcome of one regression-gate sweep.

    Attributes
    ----------
    regressions:
        Flagged :class:`Regression` findings, in file/metric order.
    checked:
        Per-file status dicts (``file``, ``gated`` metric count,
        ``priors`` used, or a ``skipped`` reason).
    """

    regressions: tuple
    checked: list

    @property
    def ok(self) -> bool:
        """Whether the sweep found no regressions."""
        return not self.regressions

    def as_dict(self) -> dict:
        """JSON-ready payload (``--format json``).

        Returns
        -------
        dict
            ``{"ok", "regressions": [...], "checked": [...]}``.
        """
        return {
            "ok": self.ok,
            "regressions": [
                {
                    "file": r.file,
                    "metric": r.metric,
                    "value": r.value,
                    "baseline": r.baseline,
                    "allowance": r.allowance,
                    "direction": r.direction,
                    "history": r.history,
                }
                for r in self.regressions
            ],
            "checked": list(self.checked),
        }

    def render(self) -> str:
        """Text rendering (what ``repro obs check-regressions`` prints).

        Returns
        -------
        str
            Per-file status lines followed by any findings.
        """
        lines = []
        for entry in self.checked:
            if "skipped" in entry:
                lines.append(f"{entry['file']}: skipped ({entry['skipped']})")
            else:
                lines.append(
                    f"{entry['file']}: {entry['gated']} gated metrics vs "
                    f"{entry['priors']} prior runs"
                )
        if self.regressions:
            lines.append("")
            lines.append(f"REGRESSIONS ({len(self.regressions)}):")
            lines.extend(f"  {r.describe()}" for r in self.regressions)
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def _comparable_priors(history: list, newest: dict) -> list:
    """Prior records sharing the newest record's scale and smoke mode."""
    return [
        record
        for record in history[:-1]
        if isinstance(record, dict)
        and record.get("scale") == newest.get("scale")
        and bool(record.get("smoke")) == bool(newest.get("smoke"))
        and isinstance(record.get("metrics"), dict)
    ]


def check_bench_file(
    path,
    rel_tolerance: float = 0.5,
    mad_k: float = 4.0,
    min_history: int = 2,
    abs_tolerance: float = 0.0,
) -> tuple:
    """Gate one ``BENCH_<name>.json`` trajectory.

    The newest record is compared against the median of comparable
    prior records (same ``scale``, same ``smoke`` flag); a metric
    regresses when its deviation in the bad direction exceeds
    ``max(abs_tolerance, rel_tolerance·|median|, mad_k·1.4826·MAD)`` —
    the MAD term widens the band for metrics that are historically
    noisy, the relative term keeps a floor for rock-steady ones.

    Parameters
    ----------
    path:
        The trajectory file.
    rel_tolerance:
        Relative deviation floor (default 0.5: a metric must move 50%
        past its median to flag, so an injected 2x slowdown fires and
        ordinary run-to-run noise does not).
    mad_k:
        Robust-sigma multiplier on the MAD term.
    min_history:
        Minimum comparable prior records; thinner trajectories are
        skipped (reported, never flagged).
    abs_tolerance:
        Absolute allowance floor (default 0.0).  A relative band is
        meaningless around a near-zero baseline — overhead *ratios*
        jitter across zero at smoke scale — so thin-history CI gates
        set this to ignore sub-threshold absolute noise.

    Returns
    -------
    tuple
        ``(regressions, status)`` — a list of :class:`Regression` and
        the per-file status dict for :class:`GateReport.checked`.

    Raises
    ------
    ValueError
        If the file is not a JSON list of records.
    """
    path = Path(path)
    try:
        history = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(history, list):
        raise ValueError(f"{path}: expected a JSON list of records")
    if not history or not isinstance(history[-1], dict):
        return [], {"file": path.name, "skipped": "no records"}
    newest = history[-1]
    metrics = newest.get("metrics")
    if not isinstance(metrics, dict):
        return [], {"file": path.name, "skipped": "newest record malformed"}
    priors = _comparable_priors(history, newest)
    if len(priors) < min_history:
        return [], {
            "file": path.name,
            "skipped": f"only {len(priors)} comparable prior runs "
                       f"(need {min_history})",
        }
    regressions: list = []
    gated = 0
    for metric, value in sorted(metrics.items()):
        direction = metric_direction(metric)
        if direction is None or isinstance(value, bool) \
                or not isinstance(value, (int, float)):
            continue
        values = [
            p["metrics"][metric]
            for p in priors
            if isinstance(p["metrics"].get(metric), (int, float))
            and not isinstance(p["metrics"].get(metric), bool)
        ]
        if len(values) < min_history:
            continue
        gated += 1
        median = statistics.median(values)
        mad = statistics.median(abs(v - median) for v in values)
        allowance = max(
            abs_tolerance,
            rel_tolerance * abs(median),
            mad_k * _MAD_SIGMA * mad,
        )
        deviation = (
            value - median if direction == "up_is_bad" else median - value
        )
        if deviation > allowance:
            regressions.append(
                Regression(
                    file=path.name,
                    metric=metric,
                    value=float(value),
                    baseline=float(median),
                    allowance=float(allowance),
                    direction=direction,
                    history=len(values),
                )
            )
    return regressions, {
        "file": path.name, "gated": gated, "priors": len(priors),
    }


def check_regressions(
    directory,
    rel_tolerance: float = 0.5,
    mad_k: float = 4.0,
    min_history: int = 2,
    abs_tolerance: float = 0.0,
) -> GateReport:
    """Gate every ``BENCH_*.json`` trajectory in a directory.

    Parameters
    ----------
    directory:
        Directory holding benchmark trajectories (``benchmarks/`` in
        the repo, a temp dir in the CI ``perf-regression`` job).
    rel_tolerance:
        See :func:`check_bench_file`.
    mad_k:
        See :func:`check_bench_file`.
    min_history:
        See :func:`check_bench_file`.
    abs_tolerance:
        See :func:`check_bench_file`.

    Returns
    -------
    GateReport
        All findings plus per-file status.

    Raises
    ------
    FileNotFoundError
        If ``directory`` does not exist.
    ValueError
        If a trajectory file is malformed.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(directory)
    regressions: list = []
    checked: list = []
    for path in sorted(directory.glob("BENCH_*.json")):
        found, status = check_bench_file(
            path,
            rel_tolerance=rel_tolerance,
            mad_k=mad_k,
            min_history=min_history,
            abs_tolerance=abs_tolerance,
        )
        regressions.extend(found)
        checked.append(status)
    return GateReport(regressions=tuple(regressions), checked=checked)
