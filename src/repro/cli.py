"""Command-line interface: sparsify Matrix Market graphs from the shell.

Seven subcommands:

``sparsify``
    Compute a σ²-similar sparsifier of a ``.mtx`` graph/SDD matrix.
    Disconnected inputs are handled end-to-end: every connected
    component becomes a shard of the shard-parallel pipeline
    (:class:`repro.sparsify.parallel.ShardedSparsifier`), and
    ``--workers N`` sparsifies shards concurrently.  ``--shard-max-nodes``
    additionally splits oversized components along Fiedler sign cuts.
    ``--profile`` prints the stage pipeline's per-stage timing/counter
    table (tree/densify plus the estimate/embedding/filter/similarity
    breakdown inside the loop).
``stream``
    Replay an edge-event log (``.jsonl``/``.npz``, see
    :mod:`repro.stream.events`) against a live
    :class:`~repro.stream.DynamicSparsifier`, reporting per-batch
    repair actions, quality and timing.  Start either from a graph
    (``--graph``) or a saved checkpoint (``--resume``); optionally
    persist a checkpoint (``--checkpoint-out``) and the final
    sparsifier (``--output``) at the end.
``serve``
    Run the query-serving subsystem (:mod:`repro.serve`): register
    graphs into a content-addressed sparsifier registry and answer
    resistance/solve/similarity/embedding queries over a JSON HTTP
    API, with ``POST /events`` streaming edge updates into the live
    sparsifiers.
``similarity``
    Estimate the spectral similarity (λmax, λmin, κ, σ) of two graphs.
``generate``
    Emit a synthetic workload.  Families (``--size s`` controls the
    scale; all weights are strictly positive):

    - ``grid2d`` — s×s four-neighbour grid, uniform random weights;
    - ``circuit_grid`` — s×s power-grid-style mesh with via/contact
      weight spread (the paper's circuit benchmarks);
    - ``thermal_stack`` — s×s×8 3-D thermal lattice with anisotropic
      vertical coupling;
    - ``ecology_grid`` — s×s landscape-resistance grid with habitat
      patches and barriers;
    - ``fem_mesh_2d`` — Delaunay triangulation of s² random points
      with inverse-length weights;
    - ``barabasi_albert`` — s²-vertex preferential-attachment graph
      (attachment degree 4), the scale-free stress case.
``lint``
    Run the project's AST static analyzer (:mod:`repro.analysis`)
    over source trees: determinism (R1xx), stage-contract (R2xx),
    lock-discipline (R3xx) and API-hygiene (R4xx) rules, with text or
    JSON output.  See ``docs/LINTING.md`` for the rule catalogue.
``obs``
    Turn collected observability data into decisions
    (:mod:`repro.obs.analyze`, :mod:`repro.obs.ledger`):
    ``obs report`` aggregates a ``--trace`` JSON into per-span
    totals/self-times and the critical path; ``obs diff`` attributes
    the wall-clock delta between two traces to span names;
    ``obs runs list/show/diff`` reads a ``--ledger`` JSONL of run
    records; ``obs check-regressions`` gates the newest record of
    every ``BENCH_*.json`` trajectory against a median+MAD baseline
    and exits non-zero on regressions (the CI perf gate).  See
    ``docs/OBSERVABILITY.md``.

Examples
--------
Sparsify a Matrix Market graph/SDD matrix to σ² = 100::

    python -m repro sparsify input.mtx -o sparsifier.mtx --sigma2 100

Sparsify a disconnected graph (e.g. a multi-die netlist), four shard
workers in parallel::

    python -m repro sparsify multi_component.mtx -o sparsifier.mtx --workers 4

Capture a hierarchical execution trace (``sparsify``, ``stream`` and
``serve`` all take ``--trace``); load the JSON in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``::

    python -m repro sparsify input.mtx -o sparsifier.mtx --trace trace.json

Replay a day of edge churn against a warm sparsifier, checkpointing at
the end::

    python -m repro stream churn.jsonl --graph grid.mtx --sigma2 100 \\
        --batch-size 200 --checkpoint-out state/ckpt

    # next day: resume from the checkpoint
    python -m repro stream churn2.jsonl --resume state/ckpt -o sparsifier.mtx

Serve spectral queries over HTTP, preloading one graph::

    python -m repro serve --port 8734 --graph grid.mtx --sigma2 100

Report the spectral similarity between two graphs::

    python -m repro similarity graph.mtx sparsifier.mtx

Generate a synthetic workload::

    python -m repro generate circuit_grid --out grid.mtx --size 64

Lint the source tree and benchmarks (the CI static-analysis gate)::

    python -m repro lint src benchmarks

Summarize a captured trace, then explain a slowdown between two runs::

    python -m repro obs report trace.json
    python -m repro obs diff fast.json slow.json

Keep a durable ledger of runs and gate benchmark trajectories::

    python -m repro sparsify input.mtx -o out.mtx --ledger runs.jsonl
    python -m repro obs runs list runs.jsonl
    python -m repro obs check-regressions benchmarks/

Exit codes are distinct per failure class: ``0`` success, ``1`` lint
findings (``lint``) or flagged regressions (``obs
check-regressions``), ``2`` usage errors (argparse and mutually
exclusive flags), ``3`` missing input files, ``4`` invalid input data
(malformed files, bad parameter values).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from repro import __version__
from repro.graphs import generators
from repro.graphs.io import load_graph_matrix_market, write_matrix_market

__all__ = [
    "main",
    "run",
    "build_parser",
    "EXIT_LINT_FINDINGS",
    "EXIT_REGRESSIONS",
    "EXIT_USAGE",
    "EXIT_MISSING_INPUT",
    "EXIT_INVALID_DATA",
]

EXIT_LINT_FINDINGS = 1
EXIT_REGRESSIONS = 1
EXIT_USAGE = 2
EXIT_MISSING_INPUT = 3
EXIT_INVALID_DATA = 4

_GENERATORS = {
    "grid2d": lambda size, seed: generators.grid2d(size, size, weights="uniform", seed=seed),
    "circuit_grid": lambda size, seed: generators.circuit_grid(size, size, seed=seed),
    "thermal_stack": lambda size, seed: generators.thermal_stack(size, size, 8, seed=seed),
    "ecology_grid": lambda size, seed: generators.ecology_grid(size, size, seed=seed),
    "fem_mesh_2d": lambda size, seed: generators.fem_mesh_2d(size * size, seed=seed),
    "barabasi_albert": lambda size, seed: generators.barabasi_albert(size * size, 4, seed=seed),
}

_GENERATOR_HELP = {
    "grid2d": "size x size grid, uniform random weights",
    "circuit_grid": "power-grid-style mesh (paper's circuit benchmarks)",
    "thermal_stack": "size x size x 8 anisotropic 3-D thermal lattice",
    "ecology_grid": "landscape-resistance grid with patches/barriers",
    "fem_mesh_2d": "Delaunay FEM mesh on size^2 random points",
    "barabasi_albert": "scale-free graph on size^2 vertices (m=4)",
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity-aware spectral graph sparsification (DAC'18)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sparsify = sub.add_parser(
        "sparsify", help="compute a sigma^2-similar sparsifier of a .mtx graph"
    )
    p_sparsify.add_argument("input", help="Matrix Market file (graph/SDD matrix)")
    p_sparsify.add_argument("-o", "--output", required=True,
                            help="output .mtx for the sparsifier adjacency")
    p_sparsify.add_argument("--sigma2", type=float, default=100.0,
                            help="similarity target (default 100)")
    p_sparsify.add_argument("--seed", type=int, default=0)
    p_sparsify.add_argument("--tree", default="akpw",
                            choices=["akpw", "spt", "maxw", "random"])
    p_sparsify.add_argument("--workers", type=int, default=1,
                            help="concurrent shard workers; disconnected "
                                 "inputs always shard per component "
                                 "(default 1)")
    p_sparsify.add_argument("--shard-max-nodes", type=int, default=None,
                            help="split components larger than this along "
                                 "Fiedler sign cuts (default: no splitting)")
    p_sparsify.add_argument("--backend", default="auto",
                            choices=["auto", "serial", "thread", "process"],
                            help="shard execution backend (default auto)")
    p_sparsify.add_argument("--kernel-backend", default="reference",
                            choices=["auto", "reference", "vectorized",
                                     "numba"],
                            help="hot-kernel implementation family; all "
                                 "backends are bit-identical (default "
                                 "reference)")
    p_sparsify.add_argument("--estimator-backend", default="reference",
                            choices=["auto", "reference", "perturbation"],
                            help="sigma^2 estimation strategy; perturbation "
                                 "skips most per-round solves under a "
                                 "quality contract instead of bit-parity "
                                 "(default reference; auto = perturbation)")
    p_sparsify.add_argument("--profile", action="store_true",
                            help="print the pipeline's per-stage "
                                 "timing/counter table (sharded runs "
                                 "report per-stage CPU totals across "
                                 "shards)")
    p_sparsify.add_argument("--trace", default=None, metavar="JSON",
                            help="write a Chrome-trace-event file of the "
                                 "run (view in Perfetto)")
    p_sparsify.add_argument("--ledger", default=None, metavar="JSONL",
                            help="append a run record (config, seed, "
                                 "sigma^2 outcome, stage timings, env "
                                 "fingerprint) to this JSONL ledger")

    p_stream = sub.add_parser(
        "stream",
        help="replay an edge-event log against a dynamic sparsifier",
    )
    p_stream.add_argument("events",
                          help="event log (.jsonl or .npz, see repro.stream)")
    p_stream.add_argument("--graph", default=None,
                          help="Matrix Market file to sparsify before replay")
    p_stream.add_argument("--resume", default=None,
                          help="checkpoint path to warm-restart from "
                               "(instead of --graph)")
    p_stream.add_argument("--sigma2", type=float, default=100.0,
                          help="similarity target (default 100; ignored "
                               "with --resume)")
    p_stream.add_argument("--batch-size", type=int, default=100,
                          help="events per applied batch (default 100)")
    p_stream.add_argument("--seed", type=int, default=0,
                          help="randomness for the initial sparsification "
                               "(default 0; ignored with --resume, which "
                               "restores the exact RNG state)")
    p_stream.add_argument("--drift-tolerance", type=float, default=1.0,
                          help="re-densify when the estimate exceeds "
                               "tolerance * sigma2 (default 1.0; ignored "
                               "with --resume)")
    p_stream.add_argument("--check-every", type=int, default=1,
                          help="drift-check cadence in batches (default 1; "
                               "ignored with --resume)")
    p_stream.add_argument("--kernel-backend", default="reference",
                          choices=["auto", "reference", "vectorized",
                                   "numba"],
                          help="hot-kernel implementation family (default "
                               "reference; ignored with --resume, which "
                               "restores the checkpointed choice)")
    p_stream.add_argument("--estimator-backend", default="reference",
                          choices=["auto", "reference", "perturbation"],
                          help="sigma^2 estimation strategy (default "
                               "reference; ignored with --resume, which "
                               "restores the checkpointed choice)")
    p_stream.add_argument("-o", "--output", default=None,
                          help="write the final sparsifier adjacency (.mtx)")
    p_stream.add_argument("--checkpoint-out", default=None,
                          help="write an npz+json checkpoint after replay")
    p_stream.add_argument("--trace", default=None, metavar="JSON",
                          help="write a Chrome-trace-event file of the "
                               "replay (view in Perfetto)")
    p_stream.add_argument("--ledger", default=None, metavar="JSONL",
                          help="append a run record (config, seed, replay "
                               "outcome, env fingerprint) to this JSONL "
                               "ledger")

    p_serve = sub.add_parser(
        "serve",
        help="serve spectral queries from registered sparsifiers over HTTP",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8734,
                         help="TCP port; 0 picks a free one (default 8734)")
    p_serve.add_argument("--spool-dir", default=None,
                         help="directory for LRU eviction checkpoints "
                              "(default: a fresh temporary directory)")
    p_serve.add_argument("--max-resident", type=int, default=4,
                         help="live sparsifiers held in memory; the rest "
                              "spill to the spool directory (default 4)")
    p_serve.add_argument("--graph", action="append", default=[],
                         metavar="MTX", dest="graphs",
                         help="Matrix Market graph to register at startup "
                              "(repeatable)")
    p_serve.add_argument("--sigma2", type=float, default=100.0,
                         help="similarity target for preloaded graphs "
                              "(default 100)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--tree", default="akpw",
                         choices=["akpw", "spt", "maxw", "random"])
    p_serve.add_argument("--port-file", default=None,
                         help="write the bound port to this file once "
                              "listening (for scripts and tests)")
    p_serve.add_argument("--trace", default=None, metavar="JSON",
                         help="write a Chrome-trace-event file of the "
                              "serving session on shutdown (view in "
                              "Perfetto)")

    p_similarity = sub.add_parser(
        "similarity", help="estimate the similarity of two .mtx graphs"
    )
    p_similarity.add_argument("graph")
    p_similarity.add_argument("sparsifier")
    p_similarity.add_argument("--seed", type=int, default=0)

    p_generate = sub.add_parser(
        "generate", help="emit a synthetic workload",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="families:\n" + "\n".join(
            f"  {name:<16} {_GENERATOR_HELP.get(name, '')}"
            for name in sorted(_GENERATORS)
        ),
    )
    p_generate.add_argument("family", choices=sorted(_GENERATORS),
                            help="workload family (see list below)")
    p_generate.add_argument("--out", required=True)
    p_generate.add_argument("--size", type=int, default=32,
                            help="side length / sqrt(n) (default 32)")
    p_generate.add_argument("--seed", type=int, default=0)

    p_lint = sub.add_parser(
        "lint", help="run the project AST static analyzer"
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )

    p_obs = sub.add_parser(
        "obs", help="analyze traces, run ledgers and benchmark trajectories"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_report = obs_sub.add_parser(
        "report", help="aggregate a Chrome-trace JSON into a span report"
    )
    p_report.add_argument("trace", help="trace file written by --trace")
    p_report.add_argument("--top", type=int, default=20,
                          help="span names to show (default 20)")
    p_report.add_argument("--format", choices=("text", "json"),
                          default="text", help="report format (default text)")

    p_diff = obs_sub.add_parser(
        "diff", help="attribute the wall-clock delta between two traces"
    )
    p_diff.add_argument("trace_a", help="baseline trace file")
    p_diff.add_argument("trace_b", help="comparison trace file")
    p_diff.add_argument("--top", type=int, default=20,
                        help="rows to show (default 20)")
    p_diff.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format (default text)")

    p_runs = obs_sub.add_parser(
        "runs", help="inspect a JSONL run ledger (--ledger output)"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="one line per run")
    p_runs_list.add_argument("ledger", help="JSONL ledger file")
    p_runs_show = runs_sub.add_parser("show", help="full record of one run")
    p_runs_show.add_argument("ledger", help="JSONL ledger file")
    p_runs_show.add_argument("--index", type=int, default=-1,
                             help="run index, negatives from the end "
                                  "(default -1: newest)")
    p_runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs (config, env, metrics, stages)"
    )
    p_runs_diff.add_argument("ledger", help="JSONL ledger file")
    p_runs_diff.add_argument("--a", type=int, default=-2,
                             help="baseline run index (default -2)")
    p_runs_diff.add_argument("--b", type=int, default=-1,
                             help="comparison run index (default -1)")

    p_gate = obs_sub.add_parser(
        "check-regressions",
        help="gate BENCH_*.json trajectories against a median+MAD baseline",
    )
    p_gate.add_argument("directory", nargs="?", default="benchmarks",
                        help="directory of BENCH_*.json files "
                             "(default benchmarks)")
    p_gate.add_argument("--tolerance", type=float, default=0.5,
                        help="relative deviation floor before a metric "
                             "flags (default 0.5)")
    p_gate.add_argument("--mad-k", type=float, default=4.0,
                        help="robust-sigma multiplier on the MAD allowance "
                             "term (default 4.0)")
    p_gate.add_argument("--min-history", type=int, default=2,
                        help="comparable prior runs required before gating "
                             "a file (default 2)")
    p_gate.add_argument("--abs-tolerance", type=float, default=0.0,
                        help="absolute allowance floor, for metrics whose "
                             "baseline sits near zero (default 0.0)")
    p_gate.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format (default text)")
    return parser


@contextlib.contextmanager
def _tracing(path: str | None):
    """Install a process-wide tracer for a command, exporting on exit.

    With ``path`` None this is a no-op.  Otherwise a fresh
    :class:`repro.obs.Tracer` is activated for the ``with`` body and
    the finished spans are written as a Chrome-trace-event JSON file —
    also on failure, so a crashed run still leaves its partial trace.
    """
    if path is None:
        yield
        return
    from repro.obs import Tracer, observed

    tracer = Tracer()
    with observed(tracer=tracer):
        try:
            yield
        finally:
            tracer.write_chrome_trace(path)
            print(f"trace written: {path}")


def _cmd_sparsify(args: argparse.Namespace) -> int:
    from repro.sparsify import sparsify_graph

    graph = load_graph_matrix_market(args.input)
    with _tracing(args.trace):
        result = sparsify_graph(
            graph, sigma2=args.sigma2, tree_method=args.tree, seed=args.seed,
            workers=args.workers, shard_max_nodes=args.shard_max_nodes,
            backend=args.backend, kernel_backend=args.kernel_backend,
            estimator_backend=args.estimator_backend,
        )
    write_matrix_market(
        args.output,
        result.sparsifier.adjacency(),
        symmetric=True,
        comment=(
            f"sparsifier of {args.input} at sigma2={args.sigma2} "
            f"(estimate {result.sigma2_estimate:.1f})"
        ),
    )
    print(result.summary())
    if args.profile and result.profile is not None:
        print(result.profile.table())
    print(f"written: {args.output}")
    if args.ledger:
        from repro.obs.ledger import RunLedger, RunRecord

        config = {
            "input": args.input, "sigma2": args.sigma2, "tree": args.tree,
            "workers": args.workers, "shard_max_nodes": args.shard_max_nodes,
            "backend": args.backend, "kernel_backend": args.kernel_backend,
            "estimator_backend": args.estimator_backend,
        }
        RunLedger(args.ledger).append(
            RunRecord.from_result(result, config=config, seed=args.seed)
        )
        print(f"ledger: {args.ledger}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream import (
        DynamicSparsifier,
        load_dynamic,
        read_event_log,
        save_dynamic,
    )

    if (args.graph is None) == (args.resume is None):
        print("error: provide exactly one of --graph or --resume",
              file=sys.stderr)
        return EXIT_USAGE
    with _tracing(args.trace):
        if args.resume is not None:
            dyn = load_dynamic(args.resume)
            print(f"resumed: {dyn.graph.n} vertices, {dyn.num_edges} "
                  f"sparsifier edges, {dyn.batches_applied} batches applied "
                  f"so far")
        else:
            graph = load_graph_matrix_market(args.graph)
            dyn = DynamicSparsifier(
                graph, sigma2=args.sigma2, seed=args.seed,
                drift_tolerance=args.drift_tolerance,
                check_every=args.check_every,
                kernel_backend=args.kernel_backend,
                estimator_backend=args.estimator_backend,
            )
            print(f"initial sparsifier: {dyn.num_edges} edges over "
                  f"{graph.n} vertices (sigma2 estimate "
                  f"{dyn.last_estimate:.1f}, target {dyn.sigma2:.1f})")
        events = read_event_log(args.events)
        print(f"replaying {len(events)} events in batches of "
              f"{args.batch_size}")
        reports = dyn.apply_log(events, batch_size=args.batch_size)
    for r in reports:
        quality = f"{r.sigma2_estimate:8.1f}" if r.checked else "     (skip)"
        actions = []
        if r.tree_rebuilt:
            actions.append("tree-rebuild")
        elif r.tree_repairs:
            actions.append(f"tree-repair x{r.tree_repairs}")
        if r.redensified:
            actions.append(f"redensify +{r.densify_added}")
        print(f"batch {r.batch:4d}: {r.num_events:5d} events "
              f"(+{r.inserted} -{r.deleted} ~{r.reweighted})  "
              f"sigma2~={quality}  edges={r.num_edges}  "
              f"{r.elapsed * 1e3:7.1f} ms"
              + (f"  [{', '.join(actions)}]" if actions else ""))
    total = sum(r.elapsed for r in reports)
    print(f"replayed {len(events)} events in {total:.3f}s; sparsifier has "
          f"{dyn.num_edges} edges (sigma2 estimate {dyn.last_estimate:.1f}, "
          f"{dyn.redensify_count} re-densifications, "
          f"{dyn.tree_repair_count} backbone repairs)")
    if args.output:
        write_matrix_market(
            args.output, dyn.sparsifier().adjacency(), symmetric=True,
            comment=f"streamed sparsifier after {len(events)} events "
                    f"(sigma2 target {dyn.sigma2})",
        )
        print(f"written: {args.output}")
    if args.checkpoint_out:
        npz_path, json_path = save_dynamic(args.checkpoint_out, dyn)
        print(f"checkpoint: {npz_path} + {json_path}")
    if args.ledger:
        from repro.obs.ledger import RunLedger, RunRecord

        config = {
            "events": args.events, "batch_size": args.batch_size,
            "sigma2": float(dyn.sigma2), "resume": args.resume,
            "kernel_backend": args.kernel_backend,
            "estimator_backend": args.estimator_backend,
        }
        metrics = {
            "num_events": len(events),
            "batches": len(reports),
            "replay_seconds": float(total),
            "sparsifier_edges": int(dyn.num_edges),
            "sigma2_target": float(dyn.sigma2),
            "sigma2_estimate": float(dyn.last_estimate),
            "redensify_count": int(dyn.redensify_count),
            "tree_repair_count": int(dyn.tree_repair_count),
        }
        RunLedger(args.ledger).append(
            RunRecord.capture(
                "stream", config=config, seed=args.seed, metrics=metrics,
                stages=dyn.profile.as_dict(),
            )
        )
        print(f"ledger: {args.ledger}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.obs import enable_metrics
    from repro.serve import SparsifierRegistry, SparsifierService

    # Enable the ambient registry before the --graph pre-registrations so
    # their build events land on /metrics, not just post-start traffic.
    enable_metrics()
    spool = args.spool_dir or tempfile.mkdtemp(prefix="repro-serve-")
    registry = SparsifierRegistry(spool, max_resident=args.max_resident)
    with _tracing(args.trace):
        for path in args.graphs:
            graph = load_graph_matrix_market(path)
            key = registry.register(
                graph, sigma2=args.sigma2, seed=args.seed,
                tree_method=args.tree
            )
            dyn = registry.get(key).dynamic
            print(f"registered {path}: key={key} ({graph.n} vertices, "
                  f"{dyn.num_edges} sparsifier edges, sigma2 estimate "
                  f"{dyn.last_estimate:.1f})")
        service = SparsifierService(registry, host=args.host, port=args.port)
        service.start()
        host, port = service.address
        if args.port_file:
            Path(args.port_file).write_text(str(port), encoding="utf-8")
        print(f"serving on http://{host}:{port} (spool: {spool}; "
              f"POST /shutdown to stop)")
        try:
            service.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print("interrupted")
        finally:
            service.stop()
    print("server stopped")
    return 0


def _cmd_similarity(args: argparse.Namespace) -> int:
    from repro.sparsify import estimate_condition_number

    graph = load_graph_matrix_market(args.graph)
    sparsifier = load_graph_matrix_market(args.sparsifier)
    estimate = estimate_condition_number(graph, sparsifier, seed=args.seed)
    print(f"lambda_max ~= {estimate.lambda_max:.4g}")
    print(f"lambda_min ~= {estimate.lambda_min:.4g}")
    print(f"kappa      ~= {estimate.condition_number:.4g}")
    print(f"sigma      ~= {estimate.sigma:.4g}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _GENERATORS[args.family](args.size, args.seed)
    write_matrix_market(
        args.out, graph.adjacency(), symmetric=True,
        comment=f"{args.family} size={args.size} seed={args.seed}",
    )
    print(f"{args.family}: {graph.n} vertices, {graph.num_edges} edges")
    print(f"written: {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import LintConfig, lint_paths
    from repro.analysis.reporters import render_json, render_text

    paths = args.paths or [p for p in ("src", "benchmarks") if Path(p).is_dir()]
    if not paths:
        raise FileNotFoundError("no lint targets (and no src/benchmarks here)")
    rules = None
    if args.rules:
        rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    result = lint_paths(paths, LintConfig(rules=rules))
    render = render_json if args.format == "json" else render_text
    print(render(result))
    return EXIT_LINT_FINDINGS if result.findings else 0


def _ledger_records(path: str) -> list:
    """Load a ledger for the ``obs runs`` commands, strict about inputs."""
    from pathlib import Path

    from repro.obs.ledger import RunLedger

    if not Path(path).exists():
        raise FileNotFoundError(path)
    records = RunLedger(path).records()
    if not records:
        raise ValueError(f"{path}: ledger holds no parseable run records")
    return records


def _pick_run(records: list, index: int, path: str):
    """Index into a ledger with a CLI-friendly error message."""
    try:
        return records[index]
    except IndexError:
        raise ValueError(
            f"{path}: run index {index} out of range "
            f"({len(records)} records)"
        ) from None


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    if args.obs_command == "report":
        from repro.obs.analyze import build_report, load_trace, render_report

        report = build_report(load_trace(args.trace), top=args.top)
        if args.format == "json":
            print(json.dumps(report, indent=2))
        else:
            print(render_report(report))
        return 0
    if args.obs_command == "diff":
        from repro.obs.analyze import diff_traces, load_trace, render_diff

        diff = diff_traces(load_trace(args.trace_a), load_trace(args.trace_b))
        if args.format == "json":
            print(json.dumps(diff, indent=2))
        else:
            print(render_diff(diff, top=args.top))
        return 0
    if args.obs_command == "runs":
        records = _ledger_records(args.ledger)
        if args.runs_command == "list":
            for i, record in enumerate(records):
                print(f"[{i}] {record.summary()}")
        elif args.runs_command == "show":
            record = _pick_run(records, args.index, args.ledger)
            print(json.dumps(record.as_dict(), indent=2))
        else:
            from repro.obs.ledger import diff_runs

            diff = diff_runs(
                _pick_run(records, args.a, args.ledger),
                _pick_run(records, args.b, args.ledger),
            )
            print(json.dumps(diff, indent=2))
        return 0
    from repro.obs.ledger import check_regressions

    report = check_regressions(
        args.directory,
        rel_tolerance=args.tolerance,
        mad_k=args.mad_k,
        min_history=args.min_history,
        abs_tolerance=args.abs_tolerance,
    )
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else EXIT_REGRESSIONS


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Parameters
    ----------
    argv:
        Argument vector (default: ``sys.argv[1:]``).

    Returns
    -------
    int
        ``0`` on success; ``1`` when ``lint`` reports findings or
        ``obs check-regressions`` flags a regression; ``2`` usage
        error (raised as ``SystemExit`` by argparse, returned directly
        for flag conflicts); ``3`` when an input file is missing;
        ``4`` on invalid input data.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "sparsify": _cmd_sparsify,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
        "similarity": _cmd_similarity,
        "generate": _cmd_generate,
        "lint": _cmd_lint,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: input file not found: {exc}", file=sys.stderr)
        return EXIT_MISSING_INPUT
    except ValueError as exc:
        print(f"error: invalid input: {exc}", file=sys.stderr)
        return EXIT_INVALID_DATA
    except BrokenPipeError:
        # Reader closed early (`repro obs report | head`): not an
        # error.  The entry point (`run`) parks stdout on devnull so
        # interpreter shutdown doesn't trip over the dead pipe.
        return 0


def run() -> None:  # pragma: no cover - exercised via subprocess tests
    """Process entry point: :func:`main` plus dead-pipe hygiene.

    Returns
    -------
    None
        Exits the process via :func:`sys.exit`.
    """
    code = main()
    # Flush now, while we can still handle a reader that closed the
    # pipe; park stdout on devnull so interpreter shutdown doesn't
    # raise from the same dead fd.
    try:
        sys.stdout.flush()
    except BrokenPipeError:
        with contextlib.suppress(OSError, ValueError):
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(code)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    run()
