"""Command-line interface: sparsify Matrix Market graphs from the shell.

Examples
--------
Sparsify a Matrix Market graph/SDD matrix to σ² = 100::

    python -m repro sparsify input.mtx -o sparsifier.mtx --sigma2 100

Report the spectral similarity between two graphs::

    python -m repro similarity graph.mtx sparsifier.mtx

Generate a synthetic workload::

    python -m repro generate circuit_grid --out grid.mtx --size 64
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.graphs import generators, largest_component
from repro.graphs.io import load_graph_matrix_market, write_matrix_market

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "grid2d": lambda size, seed: generators.grid2d(size, size, weights="uniform", seed=seed),
    "circuit_grid": lambda size, seed: generators.circuit_grid(size, size, seed=seed),
    "thermal_stack": lambda size, seed: generators.thermal_stack(size, size, 8, seed=seed),
    "ecology_grid": lambda size, seed: generators.ecology_grid(size, size, seed=seed),
    "fem_mesh_2d": lambda size, seed: generators.fem_mesh_2d(size * size, seed=seed),
    "barabasi_albert": lambda size, seed: generators.barabasi_albert(size * size, 4, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity-aware spectral graph sparsification (DAC'18)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sparsify = sub.add_parser(
        "sparsify", help="compute a sigma^2-similar sparsifier of a .mtx graph"
    )
    p_sparsify.add_argument("input", help="Matrix Market file (graph/SDD matrix)")
    p_sparsify.add_argument("-o", "--output", required=True,
                            help="output .mtx for the sparsifier adjacency")
    p_sparsify.add_argument("--sigma2", type=float, default=100.0,
                            help="similarity target (default 100)")
    p_sparsify.add_argument("--seed", type=int, default=0)
    p_sparsify.add_argument("--tree", default="akpw",
                            choices=["akpw", "spt", "maxw", "random"])

    p_similarity = sub.add_parser(
        "similarity", help="estimate the similarity of two .mtx graphs"
    )
    p_similarity.add_argument("graph")
    p_similarity.add_argument("sparsifier")
    p_similarity.add_argument("--seed", type=int, default=0)

    p_generate = sub.add_parser("generate", help="emit a synthetic workload")
    p_generate.add_argument("family", choices=sorted(_GENERATORS))
    p_generate.add_argument("--out", required=True)
    p_generate.add_argument("--size", type=int, default=32,
                            help="side length / sqrt(n) (default 32)")
    p_generate.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_sparsify(args: argparse.Namespace) -> int:
    from repro.sparsify import sparsify_graph

    graph = load_graph_matrix_market(args.input)
    graph, kept = largest_component(graph)
    if kept.size != graph.n:  # pragma: no cover - informational only
        print(f"note: using largest component ({graph.n} vertices)")
    result = sparsify_graph(
        graph, sigma2=args.sigma2, tree_method=args.tree, seed=args.seed
    )
    write_matrix_market(
        args.output,
        result.sparsifier.adjacency(),
        symmetric=True,
        comment=(
            f"sparsifier of {args.input} at sigma2={args.sigma2} "
            f"(estimate {result.sigma2_estimate:.1f})"
        ),
    )
    print(result.summary())
    print(f"written: {args.output}")
    return 0


def _cmd_similarity(args: argparse.Namespace) -> int:
    from repro.sparsify import estimate_condition_number

    graph = load_graph_matrix_market(args.graph)
    sparsifier = load_graph_matrix_market(args.sparsifier)
    estimate = estimate_condition_number(graph, sparsifier, seed=args.seed)
    print(f"lambda_max ~= {estimate.lambda_max:.4g}")
    print(f"lambda_min ~= {estimate.lambda_min:.4g}")
    print(f"kappa      ~= {estimate.condition_number:.4g}")
    print(f"sigma      ~= {estimate.sigma:.4g}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _GENERATORS[args.family](args.size, args.seed)
    write_matrix_market(
        args.out, graph.adjacency(), symmetric=True,
        comment=f"{args.family} size={args.size} seed={args.seed}",
    )
    print(f"{args.family}: {graph.n} vertices, {graph.num_edges} edges")
    print(f"written: {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "sparsify": _cmd_sparsify,
        "similarity": _cmd_similarity,
        "generate": _cmd_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
