"""Batched spectral query engine over a live sparsifier.

The paper's whole point is that a σ²-certified sparsifier is a
*reusable proxy*: build it once, then answer effective-resistance,
solve, similarity and embedding queries against the sparse ``L_P``
instead of the dense ``L_G`` — each answer certified to the σ
similarity level (Feng, DAC'18 §3; GRASS makes the same argument for
repeated eigen/solve workloads).  :class:`QueryEngine` is that serving
surface: it holds a :class:`~repro.stream.DynamicSparsifier` and its
warm factorized solver and turns queries into multi-RHS solves.

Two execution paths:

- **Direct** — :meth:`QueryEngine.resistance`, :meth:`~QueryEngine.solve`,
  :meth:`~QueryEngine.similarity`, :meth:`~QueryEngine.embedding`
  execute immediately, coalescing the columns *within* the call into
  batched multi-RHS solves (the same trick
  :func:`~repro.sparsify.effective_resistance.exact_effective_resistances`
  uses per call).
- **Micro-batched** — :meth:`QueryEngine.submit_resistance` /
  :meth:`~QueryEngine.submit_solve` enqueue a query and return a
  :class:`PendingQuery` handle.  The first ``result()`` call (or an
  explicit :meth:`~QueryEngine.flush`) executes *every* pending query,
  across submitters and threads, in **one** multi-RHS solve.  This is
  the cross-request coalescing the HTTP service and the
  ``bench_serve_queries`` benchmark lean on: ``k`` single-pair requests
  cost one factorized solve with ``k`` columns instead of ``k`` solves.

Freshness: the engine watches the dynamic sparsifier's
:attr:`~repro.stream.DynamicSparsifier.state_token` and drops derived
caches (spectral embeddings) whenever an event batch has committed; the
solver itself is the dynamic's managed solver, which tier-1 repair
keeps consistent through Woodbury/patch updates, so solve-backed
answers are σ²-fresh by construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_metrics
from repro.solvers.block import block_solve, pair_indicator_columns
from repro.sparsify.effective_resistance import (
    exact_effective_resistances,
    validate_pairs,
)
from repro.spectral.embedding import spectral_coordinates
from repro.stream.dynamic import DynamicSparsifier

__all__ = ["EngineStats", "PendingQuery", "QueryEngine"]


@dataclass
class EngineStats:
    """Counters describing the engine's batching behavior.

    Attributes
    ----------
    queries:
        Individual queries answered (a k-pair resistance call counts k).
    flushes:
        Micro-batch flushes executed (each is one multi-RHS solve).
    flushed_columns:
        Total RHS columns across all flushes; ``flushed_columns /
        flushes`` is the realized coalescing factor.
    cache_invalidations:
        Times the embedding cache was dropped because the underlying
        dynamic sparsifier advanced.
    """

    queries: int = 0
    flushes: int = 0
    flushed_columns: int = 0
    cache_invalidations: int = 0


@dataclass
class _Pending:
    """One enqueued micro-batched query (internal)."""

    kind: str  # "resistance" | "solve"
    payload: np.ndarray
    handle: "PendingQuery" = field(repr=False)


class PendingQuery:
    """Handle for a micro-batched query.

    Obtained from :meth:`QueryEngine.submit_resistance` /
    :meth:`QueryEngine.submit_solve`.  Calling :meth:`result` flushes
    the engine's whole pending queue if this query has not been executed
    yet, so the *first* waiter pays one batched solve for everyone.
    """

    def __init__(self, engine: "QueryEngine") -> None:
        self._engine = engine
        self._ready = False
        self._value: np.ndarray | float | None = None

    @property
    def ready(self) -> bool:
        """Whether the query has been executed by a flush."""
        return self._ready

    def result(self) -> np.ndarray | float:
        """The query's answer, flushing the pending batch if needed.

        Returns
        -------
        numpy.ndarray or float
            The effective resistance (float) or solution vector.
        """
        with self._engine.lock:
            if not self._ready:
                self._engine._flush_locked()
        return self._value

    def _fulfill(self, value: np.ndarray | float) -> None:
        self._value = value
        self._ready = True


class QueryEngine:
    """Answers spectral queries against a live sparsifier proxy.

    Parameters
    ----------
    dynamic:
        The live sparsifier state to serve from.  Static
        :class:`~repro.sparsify.SparsifyResult` artifacts are wrapped
        via :meth:`~repro.stream.DynamicSparsifier.from_result` first.
    batch_size:
        Columns per multi-RHS solve in direct resistance queries
        (memory control; micro-batch flushes always run as one solve).
    lock:
        Reentrant lock serializing all access to the engine *and* its
        dynamic sparsifier (a fresh one by default).  The registry
        passes each entry's persistent lock here so queries, event
        application and LRU spilling all serialize on one object that
        survives spill/reload cycles.

    Notes
    -----
    All public methods are thread-safe: the engine serializes access
    through the shared reentrant lock, which the registry and service
    layers also take around event application and eviction so queries
    never observe a half-applied batch or a mid-spill state.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.serve import QueryEngine
    >>> from repro.stream import DynamicSparsifier
    >>> g = generators.grid2d(8, 8, weights="uniform", seed=0)
    >>> engine = QueryEngine(DynamicSparsifier(g, sigma2=150.0, seed=0))
    >>> float(engine.resistance([[0, 0]])[0])
    0.0
    """

    def __init__(
        self,
        dynamic: DynamicSparsifier,
        batch_size: int = 256,
        lock: "threading.RLock | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._dyn = dynamic
        self.batch_size = int(batch_size)
        self.lock = lock if lock is not None else threading.RLock()
        self.stats = EngineStats()
        self._pending: list[_Pending] = []
        self._token = dynamic.state_token
        self._embeddings: dict[int, np.ndarray] = {}

    @property
    def dynamic(self) -> DynamicSparsifier:
        """The live sparsifier state the engine serves from."""
        return self._dyn

    # ------------------------------------------------------------------
    # Freshness
    # ------------------------------------------------------------------
    def _refresh_locked(self) -> None:
        token = self._dyn.state_token
        if token != self._token:
            self._token = token
            if self._embeddings:
                self._embeddings.clear()
                self.stats.cache_invalidations += 1

    # ------------------------------------------------------------------
    # Direct queries
    # ------------------------------------------------------------------
    def resistance(self, pairs: np.ndarray) -> np.ndarray:
        """Effective resistance of vertex pairs against the sparsifier.

        One batched multi-RHS solve per ``batch_size`` distinct pairs;
        ``u == v`` pairs short-circuit to ``0.0``.  Answers are exact
        for ``L_P`` and within the σ² certificate of the host graph's
        resistances.

        Parameters
        ----------
        pairs:
            ``(k, 2)`` vertex pairs.

        Returns
        -------
        numpy.ndarray
            One resistance per pair.

        Raises
        ------
        ValueError
            If ``pairs`` is malformed or out of range.
        """
        with self.lock:
            self._refresh_locked()
            pairs = validate_pairs(self._dyn.graph.n, pairs)
            self.stats.queries += pairs.shape[0]
            return self._resistance_locked(pairs)

    def _resistance_locked(self, pairs: np.ndarray) -> np.ndarray:
        # The graph argument only supplies the vertex count here: the
        # warm managed solver answers for the *sparsifier* Laplacian.
        return exact_effective_resistances(
            self._dyn.graph,
            pairs,
            solver=self._dyn.solver(),
            batch_size=self.batch_size,
        )

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Apply ``L_P⁺`` to one vector or each column of a matrix.

        Parameters
        ----------
        rhs:
            Right-hand side with ``n`` rows (vector or matrix).  For
            the (singular) sparsifier Laplacian the RHS is projected
            mean-free per column and the minimum-norm representative is
            returned, matching :class:`~repro.solvers.DirectSolver`.

        Returns
        -------
        numpy.ndarray
            The solution, with the shape of ``rhs``.

        Raises
        ------
        ValueError
            If ``rhs`` has the wrong number of rows.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape[0] != self._dyn.graph.n:
            raise ValueError(
                f"rhs has {rhs.shape[0]} rows, expected {self._dyn.graph.n}"
            )
        with self.lock:
            self._refresh_locked()
            self.stats.queries += 1 if rhs.ndim == 1 else rhs.shape[1]
            return block_solve(self._dyn.solver(), rhs, caller="serve")

    def similarity(self, pairs: np.ndarray) -> np.ndarray:
        """Spectral similarity score ``w(e) · R_eff(e)`` of host edges.

        The leverage score of the edge — the Spielman–Srivastava
        sampling weight, ``≈ 1`` for electrically critical (bridge-like)
        edges and ``≪ 1`` for redundant ones — computed against the
        sparsifier proxy.

        Parameters
        ----------
        pairs:
            ``(k, 2)`` endpoint pairs; every pair must be an edge of
            the *host* graph (the weight is the host weight).

        Returns
        -------
        numpy.ndarray
            One score per edge, in ``(0, 1]`` up to the σ² proxy error.

        Raises
        ------
        ValueError
            If ``pairs`` is malformed, out of range, or contains a pair
            that is not a host edge.
        """
        with self.lock:
            self._refresh_locked()
            g = self._dyn.graph
            pairs = validate_pairs(g.n, pairs)
            idx = g.edge_indices(pairs[:, 0], pairs[:, 1])
            if np.any(idx < 0):
                bad = pairs[np.flatnonzero(idx < 0)[0]]
                raise ValueError(
                    f"({int(bad[0])}, {int(bad[1])}) is not an edge of the "
                    "host graph; similarity scores are defined on edges "
                    "(use resistance() for arbitrary pairs)"
                )
            self.stats.queries += pairs.shape[0]
            return g.w[idx] * self._resistance_locked(pairs)

    def embedding(self, nodes: np.ndarray | None = None, dim: int = 2) -> np.ndarray:
        """Spectral-drawing coordinates of vertices, from the sparsifier.

        The first ``dim`` nontrivial Laplacian eigenvectors of ``L_P``
        (Koren-style drawing, the paper's Fig. 1 workload) — the proxy
        argument at its purest, since eigensolves on the sparsifier are
        far cheaper than on the host.  The full ``(n, dim)`` coordinate
        matrix is computed once per (state, dim) and cached; event
        batches invalidate the cache.

        Parameters
        ----------
        nodes:
            Vertex labels to return rows for (default: all vertices).
        dim:
            Embedding dimension, in ``[1, n - 2]``.

        Returns
        -------
        numpy.ndarray
            ``(len(nodes), dim)`` coordinate rows.

        Raises
        ------
        ValueError
            If ``dim`` is out of range or a node label is invalid.
        """
        with self.lock:
            self._refresh_locked()
            n = self._dyn.graph.n
            coords = self._embeddings.get(dim)
            if coords is None:
                coords = spectral_coordinates(self._dyn.sparsifier(), dim=dim, seed=0)
                self._embeddings[dim] = coords
            if nodes is None:
                nodes = np.arange(n, dtype=np.int64)
            else:
                nodes = np.asarray(nodes, dtype=np.int64).ravel()
                if nodes.size and (nodes.min() < 0 or nodes.max() >= n):
                    raise ValueError(f"node label out of range [0, {n})")
            self.stats.queries += int(nodes.size)
            return coords[nodes]

    # ------------------------------------------------------------------
    # Cross-request micro-batching
    # ------------------------------------------------------------------
    def submit_resistance(self, u: int, v: int) -> PendingQuery:
        """Enqueue a single-pair resistance query for batched execution.

        Parameters
        ----------
        u, v:
            The vertex pair.

        Returns
        -------
        PendingQuery
            Handle whose ``result()`` is the effective resistance; the
            first resolved handle flushes everyone's queries in one
            multi-RHS solve.

        Raises
        ------
        ValueError
            If an endpoint is out of range.
        """
        pair = validate_pairs(self._dyn.graph.n, [[u, v]])
        handle = PendingQuery(self)
        with self.lock:
            self._pending.append(_Pending("resistance", pair[0], handle))
        return handle

    def submit_solve(self, rhs: np.ndarray) -> PendingQuery:
        """Enqueue a single-vector solve for batched execution.

        Parameters
        ----------
        rhs:
            Right-hand side vector of length ``n``.

        Returns
        -------
        PendingQuery
            Handle whose ``result()`` is the solution vector.

        Raises
        ------
        ValueError
            If ``rhs`` is not a length-``n`` vector.
        """
        rhs = np.asarray(rhs, dtype=np.float64).ravel()
        if rhs.shape[0] != self._dyn.graph.n:
            raise ValueError(
                f"rhs has {rhs.shape[0]} entries, expected {self._dyn.graph.n}"
            )
        handle = PendingQuery(self)
        with self.lock:
            self._pending.append(_Pending("solve", rhs, handle))
        return handle

    @property
    def pending(self) -> int:
        """Number of enqueued, not-yet-flushed micro-batched queries."""
        return len(self._pending)

    def flush(self) -> int:
        """Execute every pending micro-batched query in one solve.

        Returns
        -------
        int
            The number of RHS columns solved (0 when nothing pended).
        """
        with self.lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        if not self._pending:
            return 0
        self._refresh_locked()
        batch, self._pending = self._pending, []
        n = self._dyn.graph.n
        rhs = np.zeros((n, len(batch)))
        res_cols = [c for c, item in enumerate(batch) if item.kind == "resistance"]
        if res_cols:
            # Degenerate u == v resistance columns are all-zero and solve
            # to zero for free inside the shared multi-RHS call.
            pairs = np.stack([batch[c].payload for c in res_cols])
            rhs[:, res_cols] = pair_indicator_columns(n, pairs)
        for col, item in enumerate(batch):
            if item.kind != "resistance":
                rhs[:, col] = item.payload
        x = block_solve(self._dyn.solver(), rhs, caller="serve")
        for col, item in enumerate(batch):
            if item.kind == "resistance":
                a, b = item.payload
                item.handle._fulfill(float(x[a, col] - x[b, col]))
            else:
                item.handle._fulfill(x[:, col])
        self.stats.queries += len(batch)
        self.stats.flushes += 1
        self.stats.flushed_columns += len(batch)
        get_metrics().histogram(
            "repro_serve_microbatch_size",
            "RHS columns per micro-batch flush (the realized "
            "cross-request coalescing factor).",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        ).observe(float(len(batch)))
        return len(batch)
