"""Query-serving subsystem: registry + batched spectral query engine.

Turns built sparsifiers into a long-lived, query-answering service —
the paper's proxy argument operationalized: pay for the σ²-certified
sparsifier once, then answer effective-resistance, solve, similarity
and embedding queries against it nearly for free.

- :class:`SparsifierRegistry` — content-addressed artifact store
  (graph hash + sparsify params → cached sparsifier) with LRU memory
  residency and checkpoint spill-to-disk;
- :class:`QueryEngine` — warm-solver query surface with cross-request
  micro-batching (pending pair/rhs queries coalesce into one multi-RHS
  solve);
- :class:`SparsifierService` / :class:`ServeClient` — stdlib JSON
  HTTP server and client, wired to the streaming layer so
  ``POST /events`` keeps served answers σ²-fresh.

Entry point: ``python -m repro serve`` (see :mod:`repro.cli`).
"""

from repro.serve.engine import EngineStats, PendingQuery, QueryEngine
from repro.serve.registry import (
    RegistryEntry,
    RegistryStats,
    SparsifierRegistry,
    artifact_key,
    graph_fingerprint,
)
from repro.serve.service import ServeClient, ServiceError, SparsifierService

__all__ = [
    "EngineStats",
    "PendingQuery",
    "QueryEngine",
    "RegistryEntry",
    "RegistryStats",
    "SparsifierRegistry",
    "artifact_key",
    "graph_fingerprint",
    "ServeClient",
    "ServiceError",
    "SparsifierService",
]
