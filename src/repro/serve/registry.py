"""Content-addressed sparsifier registry with LRU spill-to-disk.

A serving process holds many sparsifier artifacts — one per (graph,
sparsify-parameters) combination — but only a few fit in memory with
warm factorizations.  :class:`SparsifierRegistry` manages that working
set:

- **Content addressing.**  An artifact's key is a stable hash of the
  graph's canonical edge arrays (:func:`graph_fingerprint`) and the
  sparsify parameters, so registering the same graph twice is a cache
  hit, not a rebuild — the checkpoint *is* the build artifact.
- **LRU residency.**  At most ``max_resident`` artifacts keep their
  live :class:`~repro.stream.DynamicSparsifier` (and its warm
  :class:`~repro.serve.QueryEngine`) in memory.  Admitting past the cap
  evicts the least-recently-used entry by checkpointing it to the spool
  directory (:func:`repro.stream.checkpoint.save_dynamic`); touching a
  spilled entry reloads it.  The checkpoint layer's determinism
  contract makes spill → reload **bit-identical** to never having
  evicted (pinned by ``tests/serve/test_registry.py``).
- **Streaming freshness.**  :meth:`SparsifierRegistry.apply_events`
  routes edge events to an entry's dynamic sparsifier under the
  entry's lock, so concurrent queries never observe a half-applied
  batch and served answers stay σ²-fresh.
- **Pipeline build profiles.**  Artifacts are built through the shared
  stage pipeline (:mod:`repro.core`): each registered
  :class:`~repro.stream.DynamicSparsifier` carries the per-stage
  timing/counter profile of its build (and subsequent drift repairs),
  and :meth:`SparsifierRegistry.describe` — the ``/stats`` payload —
  surfaces it per artifact, snapshotted across LRU spill/reload.

Concurrency model (the HTTP service runs one handler thread per
connection): the registry lock guards the entry map and residency
bookkeeping; each entry carries one *persistent* reentrant lock —
shared with its :class:`~repro.serve.QueryEngine` across spill/reload
cycles — that serializes queries, event application and spilling of
that artifact.  Lock order is always registry → entry, and eviction
only *try*-acquires entry locks: an artifact mid-request is skipped in
favor of the next LRU candidate (temporarily exceeding
``max_resident`` when every candidate is busy) rather than risking a
deadlock or checkpointing a half-applied batch.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.profile import PipelineProfile
from repro.graphs.graph import Graph
from repro.obs import get_metrics
from repro.serve.engine import QueryEngine
from repro.sparsify.similarity_aware import SparsifyResult
from repro.stream.checkpoint import checkpoint_paths, load_dynamic, save_dynamic
from repro.stream.dynamic import BatchReport, DynamicSparsifier
from repro.stream.events import EdgeEvent

__all__ = [
    "RegistryEntry",
    "RegistryStats",
    "SparsifierRegistry",
    "artifact_key",
    "graph_fingerprint",
]


def _count_registry_event(event: str) -> None:
    """Mirror one RegistryStats increment into the metrics registry."""
    get_metrics().counter(
        "repro_registry_events_total",
        "Registry traffic by event: hit (register/get without a "
        "build), build (registry miss), eviction (LRU spill to "
        "disk), reload (checkpoint restore).",
        labelnames=("event",),
    ).inc(event=event)


def graph_fingerprint(graph: Graph) -> str:
    """Stable content hash of a graph's canonical form.

    Two graphs share a fingerprint iff they have the same vertex count
    and bit-identical canonical edge arrays — the same identity
    :class:`~repro.graphs.Graph` equality uses, made serializable.

    Parameters
    ----------
    graph:
        The graph to fingerprint.

    Returns
    -------
    str
        Hex digest (16 chars, sha256-truncated).
    """
    digest = hashlib.sha256()
    digest.update(int(graph.n).to_bytes(8, "little"))
    digest.update(graph.u.tobytes())
    digest.update(graph.v.tobytes())
    digest.update(graph.w.tobytes())
    return digest.hexdigest()[:16]


def artifact_key(fingerprint: str, params: dict) -> str:
    """Content address of a (graph, sparsify-parameters) artifact.

    Parameters
    ----------
    fingerprint:
        A :func:`graph_fingerprint` digest.
    params:
        JSON-serializable sparsify parameters (key order irrelevant).

    Returns
    -------
    str
        Hex digest (16 chars) naming the artifact.
    """
    digest = hashlib.sha256()
    digest.update(fingerprint.encode("ascii"))
    digest.update(json.dumps(params, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class RegistryStats:
    """Mutable counters of registry traffic.

    Attributes
    ----------
    builds:
        Sparsifiers built from scratch (registry misses).
    hits:
        Registers/gets satisfied without building.
    evictions:
        LRU evictions (each spills a checkpoint to disk).
    reloads:
        Spilled artifacts restored from their checkpoint.
    """

    builds: int = 0
    hits: int = 0
    evictions: int = 0
    reloads: int = 0


class RegistryEntry:
    """A registered artifact: key, parameters and (maybe) live state.

    Attributes
    ----------
    key:
        The artifact's content address.
    params:
        The sparsify parameters the artifact was built with.
    dynamic:
        The live :class:`~repro.stream.DynamicSparsifier`, or ``None``
        while the entry is spilled to disk.
    engine:
        The entry's :class:`~repro.serve.QueryEngine`, or ``None``
        while spilled.
    lock:
        Persistent reentrant lock serializing queries, event
        application and spilling of this artifact; it survives
        spill/reload cycles (successive engines share it).
    profile_snapshot:
        The artifact's accumulated pipeline profile (build + drift
        repairs) captured at the last spill, re-seeded into the live
        instance on reload so per-stage timings survive LRU eviction
        (checkpoints themselves do not persist profiles).
    """

    __slots__ = ("key", "params", "dynamic", "engine", "lock",
                 "profile_snapshot")

    def __init__(self, key: str, params: dict, dynamic: DynamicSparsifier) -> None:
        self.key = key
        self.params = params
        self.lock = threading.RLock()
        self.dynamic: DynamicSparsifier | None = dynamic
        self.engine: QueryEngine | None = QueryEngine(dynamic, lock=self.lock)
        self.profile_snapshot: dict | None = None

    @property
    def resident(self) -> bool:
        """Whether the live state is currently in memory."""
        return self.dynamic is not None


class SparsifierRegistry:
    """Content-addressed artifact store with LRU memory residency.

    Parameters
    ----------
    spool_dir:
        Directory for eviction checkpoints (created if missing).
    max_resident:
        Maximum number of live artifacts held in memory; the rest live
        as npz+json checkpoints in ``spool_dir`` and reload on access.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graphs import generators
    >>> from repro.serve import SparsifierRegistry
    >>> g = generators.grid2d(8, 8, weights="uniform", seed=0)
    >>> reg = SparsifierRegistry(tempfile.mkdtemp(), max_resident=2)
    >>> key = reg.register(g, sigma2=150.0, seed=0)
    >>> reg.register(g, sigma2=150.0, seed=0) == key   # content hit
    True
    >>> reg.stats.builds
    1
    """

    def __init__(self, spool_dir: str | Path, max_resident: int = 4) -> None:
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.max_resident = int(max_resident)
        self.stats = RegistryStats()
        self._entries: "OrderedDict[str, RegistryEntry]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        graph: Graph,
        sigma2: float = 100.0,
        seed: int = 0,
        tree_method: str = "akpw",
        **options,
    ) -> str:
        """Register a graph, building its sparsifier unless cached.

        Parameters
        ----------
        graph:
            Connected host graph to sparsify and serve.
        sigma2:
            Similarity target, as in
            :func:`~repro.sparsify.sparsify_graph`.
        seed:
            Randomness for the build and subsequent stream repairs
            (part of the content address).
        tree_method:
            Backbone construction method.
        options:
            Further JSON-serializable
            :class:`~repro.stream.DynamicSparsifier` keyword arguments
            (``drift_tolerance``, ``check_every``, ...); all take part
            in the content address.

        Returns
        -------
        str
            The artifact key (stable across re-registration).
        """
        params = {
            "sigma2": float(sigma2),
            "seed": int(seed),
            "tree_method": tree_method,
            **options,
        }
        key = artifact_key(graph_fingerprint(graph), params)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                _count_registry_event("hit")
                return key
            dyn = DynamicSparsifier(
                graph, sigma2=sigma2, seed=seed, tree_method=tree_method, **options
            )
            self.stats.builds += 1
            _count_registry_event("build")
            self._admit_locked(RegistryEntry(key, params, dyn))
            return key

    def register_result(
        self, result: SparsifyResult, seed: int = 0, **options
    ) -> str:
        """Adopt a prebuilt batch result as a served artifact.

        The warm path for a process that already ran the batch pipeline
        (or restored a :func:`~repro.stream.load_result` checkpoint):
        no re-sparsification, the result's mask and backbone become the
        live dynamic state.

        Parameters
        ----------
        result:
            A sparsification result for its own ``result.graph``.
        seed:
            Randomness for subsequent stream repairs (part of the
            content address).
        options:
            Further :class:`~repro.stream.DynamicSparsifier` keyword
            arguments (``sigma2`` defaults to the result's target).

        Returns
        -------
        str
            The artifact key.
        """
        params = {
            "sigma2": float(options.get("sigma2", result.sigma2_target)),
            "seed": int(seed),
            "from_result": True,
            **{k: v for k, v in options.items() if k != "sigma2"},
        }
        key = artifact_key(graph_fingerprint(result.graph), params)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                _count_registry_event("hit")
                return key
            dyn = DynamicSparsifier.from_result(result, seed=seed, **options)
            self.stats.builds += 1
            _count_registry_event("build")
            self._admit_locked(RegistryEntry(key, params, dyn))
            return key

    def _admit_locked(self, entry: RegistryEntry) -> None:
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        while self._resident_count_locked() > self.max_resident:
            if not self._evict_lru_locked(keep=entry.key):
                break  # every candidate is mid-request; soft cap

    def _resident_count_locked(self) -> int:
        return sum(1 for e in self._entries.values() if e.resident)

    def _evict_lru_locked(self, keep: str | None = None) -> bool:
        """Spill the LRU resident entry whose lock is free (if any).

        Only *try*-acquires entry locks (lock order registry → entry;
        a blocking acquire here could deadlock against a request thread
        that holds the entry lock and is waiting on the registry lock
        to reload a spilled artifact).  ``keep`` protects the entry the
        caller is about to hand out.
        """
        for key, entry in self._entries.items():  # oldest first
            if key == keep or not entry.resident:
                continue
            if entry.lock.acquire(blocking=False):
                try:
                    self._spill_locked(entry)
                finally:
                    entry.lock.release()
                return True
        return False

    def _spill_locked(self, entry: RegistryEntry) -> None:
        save_dynamic(self.spool_dir / entry.key, entry.dynamic)
        # Checkpoints carry no profile; snapshot it on the entry so the
        # per-stage build timings survive the spill/reload cycle.
        entry.profile_snapshot = entry.dynamic.profile.as_dict()
        entry.dynamic = None
        entry.engine = None
        self.stats.evictions += 1
        _count_registry_event("eviction")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> RegistryEntry:
        """Fetch an entry, reloading it from its checkpoint if spilled.

        Parameters
        ----------
        key:
            An artifact key returned by :meth:`register`.

        Returns
        -------
        RegistryEntry
            The (now resident, most-recently-used) entry.

        Raises
        ------
        KeyError
            If the key is unknown.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(f"unknown artifact key {key!r}")
            if not entry.resident:
                dyn = load_dynamic(self.spool_dir / key)
                if entry.profile_snapshot is not None:
                    dyn.profile = PipelineProfile.from_dict(
                        entry.profile_snapshot
                    )
                entry.dynamic = dyn
                entry.engine = QueryEngine(dyn, lock=entry.lock)
                self.stats.reloads += 1
                _count_registry_event("reload")
                self._entries.move_to_end(key)
                while self._resident_count_locked() > self.max_resident:
                    if not self._evict_lru_locked(keep=key):
                        break  # soft cap while other artifacts are busy
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                _count_registry_event("hit")
            return entry

    def engine(self, key: str) -> QueryEngine:
        """The query engine of an entry (reloading it if spilled).

        Parameters
        ----------
        key:
            An artifact key returned by :meth:`register`.

        Returns
        -------
        QueryEngine
            The entry's warm engine.  (A concurrent eviction between
            the lookup and the caller's query at worst hands out the
            just-replaced engine, which keeps answering consistently
            from its own pre-spill state.)
        """
        while True:
            engine = self.get(key).engine
            if engine is not None:
                return engine
            # Lost a race with an eviction between get() making the
            # entry resident and this read; reload and try again.

    def apply_events(self, key: str, events: Sequence[EdgeEvent]) -> BatchReport:
        """Apply an edge-event batch to a registered artifact.

        Runs under the entry's lock so in-flight queries, LRU spills
        and the update serialize; afterwards every served answer
        reflects the new graph at the maintained σ² certificate.

        Parameters
        ----------
        key:
            An artifact key returned by :meth:`register`.
        events:
            Edge events in stream order.

        Returns
        -------
        BatchReport
            The dynamic sparsifier's per-batch diagnostics.
        """
        while True:
            entry = self.get(key)
            with entry.lock:
                if entry.dynamic is not None:
                    return entry.dynamic.apply(events)
            # Evicted between get() and locking; reload and retry.

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """All registered artifact keys.

        Returns
        -------
        list
            Keys ordered least recently used first.
        """
        with self._lock:
            return list(self._entries)

    def resident_keys(self) -> list[str]:
        """Keys whose live state is currently in memory.

        Returns
        -------
        list
            Resident keys, least recently used first.
        """
        with self._lock:
            return [k for k, e in self._entries.items() if e.resident]

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def evict(self, key: str) -> None:
        """Spill one entry's live state to its checkpoint explicitly.

        A no-op when the entry is already spilled.

        Parameters
        ----------
        key:
            An artifact key returned by :meth:`register`.

        Raises
        ------
        KeyError
            If the key is unknown.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(f"unknown artifact key {key!r}")
            if entry.resident:
                # Blocking acquire is safe here: a thread holding a
                # *resident* entry's lock never waits on the registry
                # lock (only the spilled-reload path does).
                with entry.lock:
                    self._spill_locked(entry)

    def describe(self) -> dict:
        """JSON-ready snapshot of the registry (the ``/stats`` payload).

        Returns
        -------
        dict
            Stats counters plus per-entry residency and graph shape.
        """
        with self._lock:
            artifacts = {}
            for key, entry in self._entries.items():
                info: dict = {"resident": entry.resident, "params": entry.params}
                if entry.resident:
                    dyn = entry.dynamic
                    info.update(
                        num_vertices=int(dyn.graph.n),
                        num_edges=int(dyn.num_edges),
                        batches_applied=int(dyn.batches_applied),
                        sigma2_estimate=_json_float(dyn.last_estimate),
                        profile=dyn.profile.as_dict(),
                    )
                else:
                    npz_path, _ = checkpoint_paths(self.spool_dir / key)
                    info["checkpoint"] = str(npz_path)
                    if entry.profile_snapshot is not None:
                        info["profile"] = entry.profile_snapshot
                artifacts[key] = info
            return {
                "stats": asdict(self.stats),
                "max_resident": self.max_resident,
                "artifacts": artifacts,
            }


def _json_float(value: float) -> float | None:
    """NaN-free float for JSON payloads (NaN becomes None)."""
    return None if np.isnan(value) else float(value)
