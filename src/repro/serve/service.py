"""JSON-over-HTTP query service and its in-process client.

A thin stdlib (:class:`http.server.ThreadingHTTPServer`) front end over
a :class:`~repro.serve.SparsifierRegistry` — no framework, no new
dependencies.  One handler thread per connection; per-artifact engine
locks serialize queries against event application, and the registry
lock serializes admissions/evictions.

Routes (all bodies and responses are JSON):

=======  =====================  ==============================================
Method   Path                   Action
=======  =====================  ==============================================
GET      ``/stats``             registry snapshot (keys, residency, counters,
                                per-artifact pipeline stage profiles and a
                                metrics-registry snapshot)
GET      ``/metrics``           Prometheus text exposition of the process
                                metrics registry (latency histograms,
                                registry hit/miss counters, solver/kernel
                                counters — ``text/plain``, not JSON)
GET      ``/health``            SLO alert-rule evaluation over the live
                                metrics snapshot — ``200`` when every
                                rule passes, ``503`` otherwise, with a
                                per-rule JSON body either way
POST     ``/graphs``            register ``{n, u, v, w, sigma2?, seed?, ...}``
POST     ``/query/resistance``  ``{key, pairs}`` → effective resistances
POST     ``/query/similarity``  ``{key, pairs}`` → ``w·R_eff`` edge scores
POST     ``/query/solve``       ``{key, rhs}`` → ``L_P⁺ rhs``
POST     ``/query/embedding``   ``{key, nodes?, dim?}`` → spectral coordinates
POST     ``/events``            ``{key, events}`` → apply a stream batch
POST     ``/shutdown``          stop serving (after responding)
=======  =====================  ==============================================

Event records use the same shape as the JSONL event-log format
(:mod:`repro.stream.events`): ``{"type": "insert"|"delete"|"update",
"u": int, "v": int, "w": float}`` (``w`` absent on deletes), so a
captured log line can be POSTed verbatim.

Error mapping: malformed JSON or a :class:`ValueError` from the layers
below → ``400``; an unknown artifact key or route → ``404``.  The
response body is ``{"error": message}``.

:class:`ServeClient` is the matching in-process client (stdlib
``urllib``), used by the CLI, the tests and the benchmark.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.graphs.graph import Graph
from repro.obs import enable_metrics, get_metrics, get_tracer
from repro.obs.alerts import default_serving_rules, evaluate_rules
from repro.serve.registry import SparsifierRegistry
from repro.stream.events import EdgeDelete, EdgeEvent, EdgeInsert, WeightUpdate

__all__ = ["ServeClient", "ServiceError", "SparsifierService"]

_EVENT_TYPES = {"insert": EdgeInsert, "delete": EdgeDelete, "update": WeightUpdate}
_EVENT_NAMES = {cls: name for name, cls in _EVENT_TYPES.items()}

#: Known routes — the label space of the per-endpoint latency histogram
#: (unknown paths pool under ``"other"`` so labels stay bounded).
_ENDPOINTS = frozenset({
    "/stats", "/metrics", "/health", "/graphs", "/query/resistance",
    "/query/similarity", "/query/solve", "/query/embedding", "/events",
    "/shutdown",
})


def _event_from_record(record: dict) -> EdgeEvent:
    """One JSON record → one validated edge event."""
    if not isinstance(record, dict):
        raise ValueError(f"event record must be an object, got {record!r}")
    kind = record.get("type")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event type {kind!r}")
    try:
        if cls is EdgeDelete:
            return EdgeDelete(int(record["u"]), int(record["v"]))
        return cls(int(record["u"]), int(record["v"]), float(record["w"]))
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed {kind} event record: {exc}") from exc


def _event_to_record(event: EdgeEvent) -> dict:
    """One edge event → its JSON record (the JSONL log shape)."""
    record = {"type": _EVENT_NAMES[type(event)], "u": int(event.u), "v": int(event.v)}
    if not isinstance(event, EdgeDelete):
        record["w"] = float(event.w)
    return record


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the bound service (internal)."""

    service: "SparsifierService"  # bound per-service via a subclass

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # no stderr chatter from handler threads

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4"
        )

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _observe_request(self, span) -> None:
        endpoint = self.path if self.path in _ENDPOINTS else "other"
        get_metrics().histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds per HTTP request, by endpoint "
            "(unknown paths pool under 'other').",
            labelnames=("endpoint",),
        ).observe(span.elapsed, endpoint=endpoint)

    def do_GET(self) -> None:
        with get_tracer().span(
            f"GET {self.path}", category="serve"
        ) as span:
            if self.path == "/stats":
                payload = self.service._registry.describe()
                payload["metrics"] = get_metrics().snapshot()
                payload["health"] = self.service.health_report().as_dict()
                self._send(200, payload)
            elif self.path == "/metrics":
                self._send_text(200, get_metrics().render_prometheus())
            elif self.path == "/health":
                report = self.service.health_report()
                self._send(200 if report.healthy else 503, report.as_dict())
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        self._observe_request(span)

    def do_POST(self) -> None:
        with get_tracer().span(
            f"POST {self.path}", category="serve"
        ) as span:
            self._handle_post()
        self._observe_request(span)

    def _handle_post(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            self._send(400, {"error": f"request body is not JSON: {exc}"})
            return
        try:
            result = self.service._dispatch(self.path, payload)
        except KeyError as exc:
            self._send(404, {"error": str(exc.args[0]) if exc.args else "not found"})
            return
        except (ValueError, TypeError) as exc:
            # TypeError covers payloads that are JSON but the wrong
            # shape (e.g. unexpected register parameters, a scalar
            # where a list belongs) — still the client's fault.
            self._send(400, {"error": str(exc)})
            return
        self._send(200, result)
        if self.path == "/shutdown":
            # Stop the serve_forever loop from outside the handler thread
            # once the response is on the wire.
            threading.Thread(
                target=self.service._server.shutdown, daemon=True
            ).start()


class SparsifierService:
    """HTTP front end serving spectral queries from a registry.

    Parameters
    ----------
    registry:
        The artifact store to serve from (shared with in-process code).
    host:
        Bind address (default loopback).
    port:
        TCP port; ``0`` picks a free one (see :attr:`address`).
    metrics:
        When True (the default), enable the process metrics registry
        (:func:`repro.obs.enable_metrics`) so ``GET /metrics`` serves
        live counters and latency histograms from every layer; pass
        False to leave the ambient observability configuration alone
        (``/metrics`` then renders whatever is active — an empty body
        when disabled).
    alert_rules:
        SLO rules evaluated by ``GET /health`` (and echoed in
        ``/stats``); default
        :func:`repro.obs.alerts.default_serving_rules`.  Pass an
        empty tuple for an always-healthy service.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graphs import generators
    >>> from repro.serve import ServeClient, SparsifierRegistry, SparsifierService
    >>> registry = SparsifierRegistry(tempfile.mkdtemp())
    >>> with SparsifierService(registry) as service:
    ...     client = ServeClient(service.url)
    ...     key = client.register(generators.grid2d(6, 6, seed=0), sigma2=150.0)
    ...     float(client.resistance(key, [[0, 0]])[0])
    0.0
    """

    def __init__(
        self,
        registry: SparsifierRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: bool = True,
        alert_rules=None,
    ) -> None:
        self._registry = registry
        self.alert_rules = tuple(
            default_serving_rules() if alert_rules is None else alert_rules
        )
        if metrics:
            enable_metrics()
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> SparsifierRegistry:
        """The artifact store the service answers from."""
        return self._registry

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def health_report(self):
        """Evaluate the service's alert rules against live metrics.

        Returns
        -------
        repro.obs.alerts.HealthReport
            Per-rule verdicts over the current
            :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; this
            is what ``GET /health`` serializes.
        """
        return evaluate_rules(self.alert_rules, get_metrics().snapshot())

    def start(self) -> None:
        """Start serving on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True
            )
            self._thread.start()

    def wait(self) -> None:
        """Block until the serve loop exits (``POST /shutdown``)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        """Stop the serve loop and close the listening socket."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "SparsifierService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _dispatch(self, path: str, payload: dict) -> dict:
        routes = {
            "/graphs": self._post_graphs,
            "/query/resistance": self._post_resistance,
            "/query/similarity": self._post_similarity,
            "/query/solve": self._post_solve,
            "/query/embedding": self._post_embedding,
            "/events": self._post_events,
            "/shutdown": lambda payload: {"ok": True},
        }
        handler = routes.get(path)
        if handler is None:
            raise KeyError(f"unknown path {path!r}")
        return handler(payload)

    @staticmethod
    def _required(payload: dict, field: str):
        value = payload.get(field)
        if value is None:
            raise ValueError(f"missing required field {field!r}")
        return value

    def _post_graphs(self, payload: dict) -> dict:
        graph = Graph(
            int(self._required(payload, "n")),
            np.asarray(self._required(payload, "u"), dtype=np.int64),
            np.asarray(self._required(payload, "v"), dtype=np.int64),
            np.asarray(self._required(payload, "w"), dtype=np.float64),
        )
        params = {
            k: v
            for k, v in payload.items()
            if k not in ("n", "u", "v", "w")
        }
        key = self._registry.register(graph, **params)
        entry = self._registry.get(key)
        return {
            "key": key,
            "num_vertices": int(entry.dynamic.graph.n),
            "num_edges": int(entry.dynamic.num_edges),
            "sigma2": float(entry.dynamic.sigma2),
            "sigma2_estimate": _finite(entry.dynamic.last_estimate),
        }

    def _post_resistance(self, payload: dict) -> dict:
        engine = self._registry.engine(self._required(payload, "key"))
        values = engine.resistance(self._required(payload, "pairs"))
        return {"values": values.tolist()}

    def _post_similarity(self, payload: dict) -> dict:
        engine = self._registry.engine(self._required(payload, "key"))
        values = engine.similarity(self._required(payload, "pairs"))
        return {"values": values.tolist()}

    def _post_solve(self, payload: dict) -> dict:
        engine = self._registry.engine(self._required(payload, "key"))
        x = engine.solve(np.asarray(self._required(payload, "rhs"), dtype=np.float64))
        return {"x": x.tolist()}

    def _post_embedding(self, payload: dict) -> dict:
        engine = self._registry.engine(self._required(payload, "key"))
        nodes = payload.get("nodes")
        coords = engine.embedding(
            None if nodes is None else np.asarray(nodes, dtype=np.int64),
            dim=int(payload.get("dim", 2)),
        )
        return {"coordinates": coords.tolist()}

    def _post_events(self, payload: dict) -> dict:
        key = self._required(payload, "key")
        records = self._required(payload, "events")
        events = [_event_from_record(r) for r in records]
        report = self._registry.apply_events(key, events)
        return {
            "batch": report.batch,
            "num_events": report.num_events,
            "inserted": report.inserted,
            "deleted": report.deleted,
            "reweighted": report.reweighted,
            "tree_repairs": report.tree_repairs,
            "tree_rebuilt": report.tree_rebuilt,
            "checked": report.checked,
            "redensified": report.redensified,
            "sigma2_estimate": _finite(report.sigma2_estimate),
            "num_edges": report.num_edges,
            "elapsed": report.elapsed,
        }


def _finite(value: float) -> float | None:
    """NaN-free float for JSON payloads (NaN becomes None)."""
    return None if np.isnan(value) else float(value)


class ServiceError(RuntimeError):
    """A non-2xx response from the service, carrying the HTTP status.

    Attributes
    ----------
    status:
        The HTTP status code.
    body:
        The parsed JSON response body when the error response carried
        one (``None`` otherwise) — a 503 from ``/health`` puts the
        per-rule verdicts here.
    """

    def __init__(self, status: int, message: str, body: dict | None = None) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = int(status)
        self.body = body


class ServeClient:
    """In-process JSON client for :class:`SparsifierService`.

    Parameters
    ----------
    url:
        Service base URL (``service.url``).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            body = None
            try:
                body = json.loads(exc.read())
                message = body.get("error", str(exc)) if isinstance(
                    body, dict
                ) else str(exc)
            except (json.JSONDecodeError, ValueError):  # pragma: no cover
                message = str(exc)
            raise ServiceError(exc.code, message, body=body) from exc

    def register(self, graph: Graph, **params) -> str:
        """Register a graph with the service.

        Parameters
        ----------
        graph:
            Connected host graph.
        params:
            Sparsify parameters (``sigma2``, ``seed``, ``tree_method``,
            ...), forwarded to
            :meth:`~repro.serve.SparsifierRegistry.register`.

        Returns
        -------
        str
            The artifact key to pass to the query methods.
        """
        payload = {
            "n": int(graph.n),
            "u": graph.u.tolist(),
            "v": graph.v.tolist(),
            "w": graph.w.tolist(),
            **params,
        }
        return self._request("POST", "/graphs", payload)["key"]

    def resistance(self, key: str, pairs) -> np.ndarray:
        """Effective resistances of vertex pairs.

        Parameters
        ----------
        key:
            Artifact key from :meth:`register`.
        pairs:
            ``(k, 2)`` vertex pairs.

        Returns
        -------
        numpy.ndarray
            One resistance per pair.
        """
        payload = {"key": key, "pairs": np.asarray(pairs).tolist()}
        return np.asarray(
            self._request("POST", "/query/resistance", payload)["values"]
        )

    def similarity(self, key: str, pairs) -> np.ndarray:
        """Edge similarity scores ``w·R_eff`` of host edges.

        Parameters
        ----------
        key:
            Artifact key from :meth:`register`.
        pairs:
            ``(k, 2)`` endpoint pairs, each a host edge.

        Returns
        -------
        numpy.ndarray
            One score per edge.
        """
        payload = {"key": key, "pairs": np.asarray(pairs).tolist()}
        return np.asarray(
            self._request("POST", "/query/similarity", payload)["values"]
        )

    def solve(self, key: str, rhs) -> np.ndarray:
        """Apply ``L_P⁺`` to a right-hand side.

        Parameters
        ----------
        key:
            Artifact key from :meth:`register`.
        rhs:
            Vector (length ``n``) or matrix (``n`` rows).

        Returns
        -------
        numpy.ndarray
            The solution, with the shape of ``rhs``.
        """
        payload = {"key": key, "rhs": np.asarray(rhs).tolist()}
        return np.asarray(self._request("POST", "/query/solve", payload)["x"])

    def embedding(self, key: str, nodes=None, dim: int = 2) -> np.ndarray:
        """Spectral-drawing coordinates of vertices.

        Parameters
        ----------
        key:
            Artifact key from :meth:`register`.
        nodes:
            Vertex labels (default: all vertices).
        dim:
            Embedding dimension.

        Returns
        -------
        numpy.ndarray
            ``(len(nodes), dim)`` coordinates.
        """
        payload: dict = {"key": key, "dim": int(dim)}
        if nodes is not None:
            payload["nodes"] = np.asarray(nodes).tolist()
        return np.asarray(
            self._request("POST", "/query/embedding", payload)["coordinates"]
        )

    def events(self, key: str, events) -> dict:
        """Stream an edge-event batch into a served artifact.

        Parameters
        ----------
        key:
            Artifact key from :meth:`register`.
        events:
            :class:`~repro.stream.events.EdgeEvent` instances or raw
            JSONL-shaped records (dicts).

        Returns
        -------
        dict
            The batch report (counts, repairs, σ² estimate).
        """
        records = [
            e if isinstance(e, dict) else _event_to_record(e) for e in events
        ]
        return self._request("POST", "/events", {"key": key, "events": records})

    def stats(self) -> dict:
        """Registry snapshot (keys, residency, traffic counters).

        Returns
        -------
        dict
            The ``GET /stats`` payload (including a ``"metrics"``
            snapshot of the process metrics registry).
        """
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """Prometheus text exposition from ``GET /metrics``.

        Returns
        -------
        str
            The exposition body (empty when metrics are disabled
            service-side).
        """
        request = urllib.request.Request(self.url + "/metrics", method="GET")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def health(self) -> dict:
        """SLO health from ``GET /health`` (both 200 and 503 bodies).

        Unlike the other client methods, a 503 is a *result* here — the
        load-balancer contract encodes "unhealthy" in the status code
        while the body still carries the per-rule verdicts.

        Returns
        -------
        dict
            ``{"healthy": bool, "rules": [...]}`` regardless of
            status code.

        Raises
        ------
        ServiceError
            For any non-200, non-503 response.
        """
        try:
            return self._request("GET", "/health")
        except ServiceError as exc:
            if exc.status != 503 or exc.body is None:
                raise
            return exc.body

    def shutdown(self) -> None:
        """Ask the service to stop serving (after it responds)."""
        self._request("POST", "/shutdown", {})
