"""Exact O(n) solver for spanning-tree Laplacian systems.

A tree Laplacian system is an electrical flow problem on a tree: the
current through each edge is the (unique) sum of injections in the
subtree below it, after which potentials propagate from the root by
Ohm's law.  Both passes vectorize over BFS levels, so solving costs two
sweeps of the tree — this is the fast ``L_P⁺`` application used by the
generalized power iterations when the sparsifier is still a pure tree
(paper Section 3.2, Step 2).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.trees.tree import RootedTree

__all__ = ["TreeSolver"]


class TreeSolver:
    """Solve ``L_T x = b`` exactly for a spanning tree ``T``.

    The Laplacian of a connected tree is singular with null space
    ``span(1)``; RHS vectors are projected onto ``1⊥`` and solutions are
    returned mean-free, i.e. the solver applies the pseudoinverse
    ``L_T⁺``.

    Parameters
    ----------
    tree:
        The rooted spanning tree.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs import generators
    >>> from repro.trees import RootedTree, low_stretch_tree, TreeSolver
    >>> g = generators.grid2d(5, 5, seed=0)
    >>> t = RootedTree.from_graph(g, low_stretch_tree(g, seed=0))
    >>> solver = TreeSolver(t)
    >>> b = np.zeros(25); b[0], b[-1] = 1.0, -1.0
    >>> x = solver.solve(b)
    >>> L = g.edge_subgraph(t.edge_indices).laplacian()
    >>> bool(np.allclose(L @ x, b, atol=1e-10))
    True
    """

    def __init__(self, tree: RootedTree) -> None:
        self.tree = tree
        self.n = tree.n
        self._levels = tree.levels()
        # Conductance of the parent edge (root entry unused).
        with np.errstate(divide="ignore"):
            self._parent_resistance = np.where(
                tree.parent_weight > 0, 1.0 / np.maximum(tree.parent_weight, 1e-300), 0.0
            )

    @property
    def nnz(self) -> int:
        """Nonzeros of the implicit factorization (2 per tree edge)."""
        return 2 * (self.n - 1)

    def update(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> bool:
        """Edge additions turn the tree into a general graph.

        The two-sweep solve is exact only for trees, so any non-empty
        batch asks the caller to rebuild with a general sparsifier
        solver (:class:`~repro.solvers.cholesky.DirectSolver` or
        :class:`~repro.solvers.amg.AMGSolver`).
        """
        return np.atleast_1d(np.asarray(u)).size == 0

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply ``L_T⁺`` to one vector or to each column of a matrix."""
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        if single:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        # Work on the projection of b onto range(L_T) = 1⊥.
        flow = b - b.mean(axis=0, keepdims=True)
        parent = self.tree.parent
        # Upward pass: subtree injection sums = edge currents toward parent.
        for level in reversed(self._levels[1:]):
            np.add.at(flow, parent[level], flow[level])
        # Downward pass: potentials from Ohm's law.
        x = np.zeros_like(flow)
        resistance = self._parent_resistance
        for level in self._levels[1:]:
            x[level] = x[parent[level]] + flow[level] * resistance[level][:, None]
        x -= x.mean(axis=0, keepdims=True)
        return x[:, 0] if single else x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Alias so the solver can be used as a preconditioner callable."""
        return self.solve(b)
