"""Tarjan's offline lowest-common-ancestor algorithm.

An alternative to binary lifting for the bulk LCA workload of stretch
computation: when *all* queries are known in advance, Tarjan's
union-find traversal answers ``q`` queries over an ``n``-vertex tree in
``O((n + q) α(n))`` — no ``O(n log n)`` ancestor table.  Used as an
independent oracle for :class:`~repro.trees.BinaryLiftingLCA` in the
test suite and as the memory-lean option for very deep trees.
"""

from __future__ import annotations

import numpy as np

from repro.trees.spanning import DisjointSet
from repro.trees.tree import RootedTree

__all__ = ["tarjan_offline_lca"]


def tarjan_offline_lca(
    tree: RootedTree, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Answer a batch of LCA queries with Tarjan's offline algorithm.

    Parameters
    ----------
    tree:
        The rooted tree.
    u, v:
        Query endpoint arrays of equal length.

    Returns
    -------
    Array of LCAs, aligned with the query order.

    Notes
    -----
    Implemented iteratively (explicit DFS stack) so deep trees do not
    hit Python's recursion limit.  Queries are bucketed per endpoint;
    when the DFS finishes a vertex, all its pending queries whose other
    endpoint is already visited resolve to ``find(other)``.
    """
    u = np.atleast_1d(np.asarray(u, dtype=np.int64))
    v = np.atleast_1d(np.asarray(v, dtype=np.int64))
    if u.shape != v.shape:
        raise ValueError(f"query shapes differ: {u.shape} vs {v.shape}")
    n = tree.n
    q = u.size
    answers = np.empty(q, dtype=np.int64)

    # Bucket queries by endpoint (each query appears in two buckets).
    query_heads: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for k in range(q):
        query_heads[int(u[k])].append((int(v[k]), k))
        query_heads[int(v[k])].append((int(u[k]), k))

    # Children lists from the parent array.
    children: list[list[int]] = [[] for _ in range(n)]
    for vertex in range(n):
        parent = int(tree.parent[vertex])
        if parent >= 0:
            children[parent].append(vertex)

    dsu = DisjointSet(n)
    ancestor = np.arange(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)

    # Iterative post-order DFS: (vertex, child_cursor) stack frames.
    stack: list[tuple[int, int]] = [(tree.root, 0)]
    while stack:
        vertex, cursor = stack.pop()
        if cursor < len(children[vertex]):
            stack.append((vertex, cursor + 1))
            stack.append((children[vertex][cursor], 0))
            continue
        # Post-visit: all children of `vertex` are merged below it.
        visited[vertex] = True
        for other, k in query_heads[vertex]:
            if visited[other]:
                answers[k] = ancestor[dsu.find(other)]
        parent = int(tree.parent[vertex])
        if parent >= 0:
            dsu.union(parent, vertex)
            ancestor[dsu.find(parent)] = parent
    return answers
