"""Tarjan's offline lowest-common-ancestor algorithm.

An alternative to binary lifting for the bulk LCA workload of stretch
computation: when *all* queries are known in advance, Tarjan's
union-find traversal answers ``q`` queries over an ``n``-vertex tree in
``O((n + q) α(n))`` — no ``O(n log n)`` ancestor table.  Used as an
independent oracle for :class:`~repro.trees.BinaryLiftingLCA` in the
test suite, as the memory-lean option for very deep trees, and as the
``method="tarjan"`` engine of :func:`repro.trees.edge_stretches`.

The traversal lives in :func:`tarjan_lca_core`, a flat-array loop nest
written in the numba ``nopython`` subset: when numba is importable the
core is JIT-compiled at import time, otherwise the same function runs
as plain Python — identical results either way, so the kernel parity
suite covers both legs with one test body.  The union-find inside
replicates :class:`repro.trees.spanning.DisjointSet` (union by rank,
path halving) operation-for-operation.
"""

from __future__ import annotations

import numpy as np

from repro.trees.tree import RootedTree

__all__ = ["tarjan_lca_core", "tarjan_offline_lca"]


def tarjan_lca_core(parent: np.ndarray, root: int, qu: np.ndarray,
                    qv: np.ndarray) -> np.ndarray:
    """Flat-array Tarjan offline LCA (numba ``nopython``-compatible).

    Parameters
    ----------
    parent:
        ``int64`` parent array of a rooted tree (``-1`` at the root).
    root:
        Root vertex.
    qu, qv:
        ``int64`` query endpoint arrays of equal length.

    Returns
    -------
    numpy.ndarray
        ``int64`` LCA per query, aligned with the query order.
    """
    n = parent.size
    q = qu.size
    # Children in CSR layout (vertex order, matching a child-list walk).
    child_count = np.zeros(n + 1, dtype=np.int64)
    for vertex in range(n):
        p = parent[vertex]
        if p >= 0:
            child_count[p + 1] += 1
    child_start = np.zeros(n + 1, dtype=np.int64)
    for vertex in range(n):
        child_start[vertex + 1] = child_start[vertex] + child_count[vertex + 1]
    child_pos = child_start[:-1].copy()
    child_list = np.empty(max(n - 1, 0), dtype=np.int64)
    for vertex in range(n):
        p = parent[vertex]
        if p >= 0:
            child_list[child_pos[p]] = vertex
            child_pos[p] += 1
    # Queries bucketed per endpoint (each query in both buckets).
    query_count = np.zeros(n + 1, dtype=np.int64)
    for k in range(q):
        query_count[qu[k] + 1] += 1
        query_count[qv[k] + 1] += 1
    query_start = np.zeros(n + 1, dtype=np.int64)
    for vertex in range(n):
        query_start[vertex + 1] = (
            query_start[vertex] + query_count[vertex + 1]
        )
    query_pos = query_start[:-1].copy()
    query_other = np.empty(2 * q, dtype=np.int64)
    query_id = np.empty(2 * q, dtype=np.int64)
    for k in range(q):
        a = qu[k]
        b = qv[k]
        query_other[query_pos[a]] = b
        query_id[query_pos[a]] = k
        query_pos[a] += 1
        query_other[query_pos[b]] = a
        query_id[query_pos[b]] = k
        query_pos[b] += 1
    # Union-find state (DisjointSet semantics: rank union, halving).
    dsu_parent = np.arange(n, dtype=np.int64)
    dsu_rank = np.zeros(n, dtype=np.int64)
    ancestor = np.arange(n, dtype=np.int64)
    visited = np.zeros(n, dtype=np.bool_)
    answers = np.empty(q, dtype=np.int64)
    # Iterative post-order DFS: explicit vertex + child-cursor stacks.
    stack = np.empty(n, dtype=np.int64)
    cursor = np.empty(n, dtype=np.int64)
    top = 0
    stack[0] = root
    cursor[0] = 0
    while top >= 0:
        vertex = stack[top]
        c = cursor[top]
        if child_start[vertex] + c < child_start[vertex + 1]:
            cursor[top] = c + 1
            top += 1
            stack[top] = child_list[child_start[vertex] + c]
            cursor[top] = 0
            continue
        # Post-visit: all children of `vertex` are merged below it.
        visited[vertex] = True
        for j in range(query_start[vertex], query_start[vertex + 1]):
            other = query_other[j]
            if visited[other]:
                x = other
                while dsu_parent[x] != x:
                    dsu_parent[x] = dsu_parent[dsu_parent[x]]
                    x = dsu_parent[x]
                answers[query_id[j]] = ancestor[x]
        p = parent[vertex]
        if p >= 0:
            x = p
            while dsu_parent[x] != x:
                dsu_parent[x] = dsu_parent[dsu_parent[x]]
                x = dsu_parent[x]
            ra = x
            x = vertex
            while dsu_parent[x] != x:
                dsu_parent[x] = dsu_parent[dsu_parent[x]]
                x = dsu_parent[x]
            rb = x
            if ra != rb:
                if dsu_rank[ra] < dsu_rank[rb]:
                    ra, rb = rb, ra
                dsu_parent[rb] = ra
                if dsu_rank[ra] == dsu_rank[rb]:
                    dsu_rank[ra] += 1
            ancestor[ra] = p
        top -= 1
    return answers


try:  # pragma: no cover - exercised only where numba is installed
    import numba

    tarjan_lca_core = numba.njit(cache=True)(tarjan_lca_core)
except ImportError:  # pragma: no cover - the common container state
    pass


def tarjan_offline_lca(
    tree: RootedTree, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Answer a batch of LCA queries with Tarjan's offline algorithm.

    Parameters
    ----------
    tree:
        The rooted tree.
    u, v:
        Query endpoint arrays of equal length.

    Returns
    -------
    Array of LCAs, aligned with the query order.

    Notes
    -----
    Thin validation wrapper over :func:`tarjan_lca_core` — an iterative
    (explicit DFS stack) flat-array traversal, so deep trees do not hit
    Python's recursion limit and the loop nest JIT-compiles when numba
    is available.  Queries are bucketed per endpoint; when the DFS
    finishes a vertex, all its pending queries whose other endpoint is
    already visited resolve to ``ancestor(find(other))``.
    """
    u = np.atleast_1d(np.asarray(u, dtype=np.int64))
    v = np.atleast_1d(np.asarray(v, dtype=np.int64))
    if u.shape != v.shape:
        raise ValueError(f"query shapes differ: {u.shape} vs {v.shape}")
    return tarjan_lca_core(
        np.asarray(tree.parent, dtype=np.int64), int(tree.root), u, v
    )
