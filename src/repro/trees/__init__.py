"""Spanning trees: construction, stretch analysis, LCA and exact solving."""

from repro.trees.tree import RootedTree
from repro.trees.spanning import (
    DisjointSet,
    complete_forest,
    kruskal,
    maximum_weight_spanning_tree,
    minimum_spanning_tree,
    prim,
)
from repro.trees.lsst import akpw, low_stretch_tree, shortest_path_tree
from repro.trees.lca import BinaryLiftingLCA
from repro.trees.tarjan_lca import tarjan_offline_lca
from repro.trees.stretch import StretchReport, edge_stretches, total_stretch
from repro.trees.tree_solver import TreeSolver

__all__ = [
    "RootedTree",
    "DisjointSet",
    "kruskal",
    "prim",
    "minimum_spanning_tree",
    "maximum_weight_spanning_tree",
    "complete_forest",
    "akpw",
    "shortest_path_tree",
    "low_stretch_tree",
    "BinaryLiftingLCA",
    "tarjan_offline_lca",
    "StretchReport",
    "edge_stretches",
    "total_stretch",
    "TreeSolver",
]
