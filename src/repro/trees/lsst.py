"""Low-stretch spanning tree (LSST) extraction.

The sparsifier backbone of the paper is an LSST [1, 8]: a spanning tree
whose total stretch ``st_P(G) = Trace(L_P⁺ L_G)`` is near-linear in
``m``.  We implement an AKPW-style construction: edges are processed in
geometrically growing length scales, and at each scale the current
cluster graph is partitioned by *exponentially shifted* shortest-path
growth (the Miller–Peng–Xu decomposition), whose BFS forests become tree
edges before clusters contract.  A Borůvka step guarantees progress on
adversarial rounds.

Shortest-path trees (Dijkstra) and maximum-weight trees are provided as
baseline backbones for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graphs.graph import Graph
from repro.graphs.components import is_connected
from repro.trees.spanning import minimum_spanning_tree
from repro.utils.rng import as_rng

__all__ = [
    "akpw",
    "boruvka_union_core",
    "claim_labels",
    "shortest_path_tree",
    "low_stretch_tree",
]


def claim_labels(
    dist: np.ndarray, pred: np.ndarray, virtual: int
) -> np.ndarray:
    """Assign every cluster to its claiming center (reference loop).

    Clusters are walked in increasing shifted distance, which
    guarantees predecessors are labelled before their successors —
    every cluster therefore inherits the label of the root of its
    Dijkstra predecessor chain.  This is the sequential reference
    implementation; the kernel backends substitute order-free
    equivalents (pointer doubling, JIT chain chasing) through the
    ``label_resolver`` hooks below.

    Parameters
    ----------
    dist:
        Shifted shortest-path distances from the virtual source.
    pred:
        Dijkstra predecessors; the virtual source and negative entries
        terminate chains.
    virtual:
        Index of the virtual source node.

    Returns
    -------
    numpy.ndarray
        ``int64`` cluster labels (the claiming center per cluster).
    """
    labels = -np.ones(pred.size, dtype=np.int64)
    for v in np.argsort(dist, kind="stable"):
        p = pred[v]
        labels[v] = v if p == virtual or p < 0 else labels[p]
    return labels


def _dedupe_cluster_edges(
    cu: np.ndarray, cv: np.ndarray, lengths: np.ndarray, orig: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Keep the shortest representative of each parallel cluster edge."""
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    key = lo.astype(np.int64) * np.int64(k) + hi
    order = np.lexsort((lengths, key))
    key_sorted = key[order]
    first = np.empty(order.size, dtype=bool)
    if order.size:
        first[0] = True
        np.not_equal(key_sorted[1:], key_sorted[:-1], out=first[1:])
    keep = order[first]
    return lo[keep], hi[keep], lengths[keep], orig[keep]


def _shifted_shortest_path_round(
    k: int,
    cu: np.ndarray,
    cv: np.ndarray,
    lengths: np.ndarray,
    orig: np.ndarray,
    active: np.ndarray,
    scale: float,
    rng: np.random.Generator,
    label_resolver=None,
) -> tuple[np.ndarray, np.ndarray]:
    """One MPX decomposition round over the active cluster edges.

    Returns ``(labels, tree_edge_ids)``: new cluster labels (not yet
    compressed) and original-graph edge ids of the claimed forest edges.

    The exponential start-delay trick is realized with a virtual source
    connected to every cluster with weight ``δ_v ~ Exp(scale)``; the
    Dijkstra predecessor forest rooted at the virtual source then assigns
    every cluster to its claiming center, and the forest edges (which are
    real active edges) join the spanning tree.
    """
    au, av, alen, aorig = cu[active], cv[active], lengths[active], orig[active]
    delays = rng.exponential(scale=scale, size=k)
    virtual = k
    rows = np.concatenate([au, av, np.full(k, virtual, dtype=np.int64)])
    cols = np.concatenate([av, au, np.arange(k, dtype=np.int64)])
    vals = np.concatenate([alen, alen, delays])
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(k + 1, k + 1))
    dist, pred = csgraph.dijkstra(
        matrix, directed=False, indices=virtual, return_predecessors=True
    )
    dist, pred = dist[:k], pred[:k]

    labels = (label_resolver or claim_labels)(dist, pred, virtual)

    # Forest edges: (pred[v], v) for non-center claimed clusters.
    claimed = np.flatnonzero((pred != virtual) & (pred >= 0))
    if claimed.size == 0:
        return labels, np.array([], dtype=np.int64)
    # Map each (pred, v) cluster pair to the original edge id through the
    # deduplicated active-edge key table.
    lo = np.minimum(au, av)
    hi = np.maximum(au, av)
    keys = lo * np.int64(k) + hi
    sort = np.argsort(keys, kind="stable")
    keys_sorted = keys[sort]
    want_lo = np.minimum(pred[claimed], claimed)
    want_hi = np.maximum(pred[claimed], claimed)
    want = want_lo * np.int64(k) + want_hi
    pos = np.searchsorted(keys_sorted, want)
    if np.any(keys_sorted[np.clip(pos, 0, keys_sorted.size - 1)] != want):
        raise RuntimeError("Dijkstra forest used an inactive edge")  # pragma: no cover
    return labels, aorig[sort[pos]]


def boruvka_union_core(
    k: int, cu: np.ndarray, cv: np.ndarray, chosen: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Union the chosen Borůvka edges; numba ``nopython``-compatible.

    Replicates :class:`repro.trees.spanning.DisjointSet` (union by
    rank, path halving) operation-for-operation: representative ids
    flow into ``np.unique`` label compression and thereby into the
    tree's edge identity, so any substitute core must produce the same
    roots, not merely the same partition.

    Parameters
    ----------
    k:
        Number of clusters.
    cu, cv:
        ``int64`` cluster endpoints of every edge in the round.
    chosen:
        ``int64`` positions of the selected best edges, in union order.

    Returns
    -------
    tuple
        ``(labels, added)`` — per-cluster representative labels, and a
        boolean mask over ``chosen`` marking edges that merged two
        clusters (the forest edges of the round).
    """
    parent = np.arange(k, dtype=np.int64)
    rank = np.zeros(k, dtype=np.int64)
    added = np.zeros(chosen.size, dtype=np.bool_)
    for i in range(chosen.size):
        e = chosen[i]
        x = cu[e]
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        ra = x
        x = cv[e]
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        rb = x
        if ra == rb:
            continue
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        added[i] = True
    labels = np.empty(k, dtype=np.int64)
    for v in range(k):
        x = v
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        labels[v] = x
    return labels, added


def _boruvka_round(
    k: int,
    cu: np.ndarray,
    cv: np.ndarray,
    lengths: np.ndarray,
    orig: np.ndarray,
    boruvka_core=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Borůvka fallback: every cluster grabs its shortest incident edge.

    Guarantees the cluster count at least halves, which makes the AKPW
    loop terminate even when a randomized round stalls.  The sequential
    union loop lives in :func:`boruvka_union_core`; ``boruvka_core``
    is the kernel-backend hook substituting a JIT-compiled equivalent
    (value-identical — the parity suite checks).
    """
    best = np.full(k, -1, dtype=np.int64)
    best_len = np.full(k, np.inf)
    for endpoint in (cu, cv):
        order = np.argsort(lengths, kind="stable")
        # First occurrence per endpoint wins (shortest due to ordering).
        ep = endpoint[order]
        uniq, first_pos = np.unique(ep, return_index=True)
        cand_len = lengths[order][first_pos]
        better = cand_len < best_len[uniq]
        best[uniq[better]] = order[first_pos[better]]
        best_len[uniq[better]] = cand_len[better]
    chosen = np.unique(best[best >= 0])
    labels, added = (boruvka_core or boruvka_union_core)(
        k,
        np.ascontiguousarray(cu, dtype=np.int64),
        np.ascontiguousarray(cv, dtype=np.int64),
        chosen,
    )
    return labels, orig[chosen[added]]


def akpw(
    graph: Graph,
    seed: int | np.random.Generator | None = None,
    scale_factor: float = 4.0,
    label_resolver=None,
    boruvka_core=None,
) -> np.ndarray:
    """AKPW-style low-stretch spanning tree; returns canonical edge indices.

    Parameters
    ----------
    graph:
        Connected weighted graph.
    seed:
        Randomness for the exponential shifts.
    scale_factor:
        Geometric growth of the length scale between rounds (the paper's
        LSST references use a large theoretical base; 4 works well in
        practice and keeps the number of rounds logarithmic).
    label_resolver:
        Optional ``(dist, pred, virtual) -> labels`` replacement for
        :func:`claim_labels` — the kernel-backend hook; any substitute
        must be value-identical (the parity suite checks).
    boruvka_core:
        Optional ``(k, cu, cv, chosen) -> (labels, added)`` replacement
        for :func:`boruvka_union_core` — same contract: bit-identical
        representative labels and forest-edge mask.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if scale_factor <= 1.0:
        raise ValueError(f"scale_factor must exceed 1, got {scale_factor}")
    rng = as_rng(seed)
    n = graph.n
    if n == 1:
        return np.array([], dtype=np.int64)

    # Cluster-graph state: endpoints, lengths (resistance), original ids.
    cu = graph.u.copy()
    cv = graph.v.copy()
    lengths = 1.0 / graph.w
    orig = np.arange(graph.num_edges, dtype=np.int64)
    k = n
    cu, cv, lengths, orig = _dedupe_cluster_edges(cu, cv, lengths, orig, k)

    tree_edges: list[np.ndarray] = []
    scale = float(lengths.min()) * scale_factor
    while k > 1:
        active = lengths <= scale
        if not np.any(active):
            # Jump to the next populated scale.
            scale = float(lengths.min()) * scale_factor
            active = lengths <= scale
        labels, added = _shifted_shortest_path_round(
            k, cu, cv, lengths, orig, active, scale, rng,
            label_resolver=label_resolver,
        )
        if added.size == 0:
            labels, added = _boruvka_round(
                k, cu, cv, lengths, orig, boruvka_core=boruvka_core
            )
        tree_edges.append(added)
        # Compress labels and contract.
        uniq, new_labels = np.unique(labels, return_inverse=True)
        k = uniq.size
        cu = new_labels[cu]
        cv = new_labels[cv]
        inter = cu != cv
        cu, cv, lengths, orig = cu[inter], cv[inter], lengths[inter], orig[inter]
        cu, cv, lengths, orig = _dedupe_cluster_edges(cu, cv, lengths, orig, k)
        scale *= scale_factor

    result = np.sort(np.concatenate(tree_edges)) if tree_edges else np.array([], dtype=np.int64)
    if result.size != n - 1:  # pragma: no cover - invariant of the construction
        raise RuntimeError(f"AKPW produced {result.size} edges, expected {n - 1}")
    return result


def shortest_path_tree(
    graph: Graph, root: int | None = None, seed=None
) -> np.ndarray:
    """Dijkstra shortest-path tree under resistance lengths ``1/w``.

    A classical 'pretty good' backbone: stretch along root paths is 1 by
    construction, but cross edges can be badly stretched — exactly the
    behaviour the LSST construction fixes.  Used in ablations.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if root is None:
        # Heuristic center: the highest weighted-degree vertex.
        root = int(np.argmax(graph.weighted_degrees()))
    lengths = 1.0 / graph.w
    matrix = sp.csr_matrix(
        (
            np.concatenate([lengths, lengths]),
            (
                np.concatenate([graph.u, graph.v]),
                np.concatenate([graph.v, graph.u]),
            ),
        ),
        shape=(graph.n, graph.n),
    )
    _, pred = csgraph.dijkstra(
        matrix, directed=False, indices=root, return_predecessors=True
    )
    vertices = np.flatnonzero(pred >= 0)
    idx = graph.edge_indices(vertices, pred[vertices])
    if np.any(idx < 0):  # pragma: no cover - SPT edges exist
        raise RuntimeError("Dijkstra produced an edge absent from the graph")
    return np.sort(idx)


def low_stretch_tree(
    graph: Graph,
    method: str = "akpw",
    seed: int | np.random.Generator | None = None,
    root: int | None = None,
    label_resolver=None,
    boruvka_core=None,
) -> np.ndarray:
    """Spanning-tree backbone dispatcher.

    ``method`` is one of ``"akpw"`` (default, low-stretch),
    ``"spt"`` (Dijkstra shortest-path tree), ``"maxw"`` (maximum-weight
    tree) or ``"random"`` (uniformly weighted Kruskal order — the
    worst-case baseline for ablations).  ``label_resolver`` and
    ``boruvka_core`` are the kernel-backend hooks forwarded to
    :func:`akpw` (ignored by the other methods, which have no
    sequential loops).
    """
    if method == "akpw":
        return akpw(
            graph,
            seed=seed,
            label_resolver=label_resolver,
            boruvka_core=boruvka_core,
        )
    if method == "spt":
        return shortest_path_tree(graph, root=root, seed=seed)
    if method == "maxw":
        return minimum_spanning_tree(graph, 1.0 / graph.w)
    if method == "random":
        rng = as_rng(seed)
        return minimum_spanning_tree(graph, rng.random(graph.num_edges))
    raise ValueError(f"unknown tree method {method!r}")
