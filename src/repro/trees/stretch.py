"""Edge stretch and total stretch of a spanning tree.

The stretch of edge ``e = (p, q)`` with weight ``w_e`` over tree ``P`` is
``st_P(e) = w_e · R_T(p, q)`` where ``R_T`` is the tree-path resistance.
The paper's Section 3.2/3.3 identity ``st_P(G) = Trace(L_P⁺ L_G)``
(Eq. 4) makes total stretch the certificate that at most ``k``
generalized eigenvalues exceed ``st_P(G)/k`` — the foundation of the
edge-filtering analysis.  Tree edges have stretch exactly 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.trees.tree import RootedTree
from repro.trees.lca import BinaryLiftingLCA

__all__ = ["StretchReport", "edge_stretches", "total_stretch"]


@dataclass(frozen=True)
class StretchReport:
    """Per-edge stretch of a spanning tree over its host graph.

    Attributes
    ----------
    stretches:
        Stretch of every canonical edge (tree edges contribute 1.0).
    tree_mask:
        Boolean mask marking tree edges.
    total:
        ``st_P(G) = Trace(L_P⁺ L_G)`` — sum over all edges.
    """

    stretches: np.ndarray
    tree_mask: np.ndarray

    @property
    def total(self) -> float:
        return float(self.stretches.sum())

    @property
    def off_tree_stretches(self) -> np.ndarray:
        """Stretch values of the off-tree edges only."""
        return self.stretches[~self.tree_mask]

    @property
    def max_off_tree(self) -> float:
        off = self.off_tree_stretches
        return float(off.max()) if off.size else 0.0


def edge_stretches(
    graph: Graph,
    tree_edge_indices: np.ndarray,
    root: int = 0,
    method: str = "lifting",
) -> StretchReport:
    """Compute stretch of every edge w.r.t. the given spanning tree.

    Both methods share the root-resistance prefix sums and differ only
    in the LCA engine — results are bit-identical:

    - ``"lifting"`` (default): batched binary-lifting table,
      ``O((n + m) log n)`` and fully vectorized;
    - ``"tarjan"``: Tarjan's offline union-find traversal,
      ``O((n + m) α(n))`` with no ancestor table — the lean choice for
      very deep trees, JIT-compiled when numba is available.
    """
    tree = RootedTree.from_graph(graph, tree_edge_indices, root=root)
    resistance = tree.resistance_to_root()
    tree_mask = np.zeros(graph.num_edges, dtype=bool)
    tree_mask[np.asarray(tree_edge_indices, dtype=np.int64)] = True
    stretches = np.ones(graph.num_edges, dtype=np.float64)
    off = np.flatnonzero(~tree_mask)
    if off.size:
        u, v = graph.u[off], graph.v[off]
        if method == "lifting":
            path_r = BinaryLiftingLCA(tree).path_resistance(u, v, resistance)
        elif method == "tarjan":
            from repro.trees.tarjan_lca import tarjan_offline_lca

            anc = tarjan_offline_lca(tree, u, v)
            path_r = resistance[u] + resistance[v] - 2.0 * resistance[anc]
        else:
            raise ValueError(f"unknown stretch method {method!r}")
        stretches[off] = graph.w[off] * path_r
    elif method not in ("lifting", "tarjan"):
        raise ValueError(f"unknown stretch method {method!r}")
    return StretchReport(stretches=stretches, tree_mask=tree_mask)


def total_stretch(
    graph: Graph,
    tree_edge_indices: np.ndarray,
    root: int = 0,
    method: str = "lifting",
) -> float:
    """Total stretch ``st_P(G)`` of the tree (Eq. 4)."""
    return edge_stretches(
        graph, tree_edge_indices, root=root, method=method
    ).total
