"""Lowest common ancestor queries by binary lifting.

Stretch computation needs the tree-path resistance between the endpoints
of every off-tree edge; with root-resistance prefix sums that reduces to
one LCA per edge.  Binary lifting answers batches of queries in
``O(log depth)`` vectorized passes.
"""

from __future__ import annotations

import numpy as np

from repro.trees.tree import RootedTree

__all__ = ["BinaryLiftingLCA"]


class BinaryLiftingLCA:
    """LCA oracle over a :class:`RootedTree`.

    Builds the ancestor table ``up[j][v] = 2^j``-th ancestor (clamped to
    the root) in ``O(n log n)``; queries are vectorized over arrays of
    vertex pairs.
    """

    def __init__(self, tree: RootedTree) -> None:
        self.tree = tree
        n = tree.n
        max_depth = int(tree.depth.max()) if n else 0
        self.num_levels = max(1, int(np.ceil(np.log2(max_depth + 1))) + 1)
        up = np.empty((self.num_levels, n), dtype=np.int64)
        # Level 0: parent, with the root mapped to itself so lifting clamps.
        parent = tree.parent.copy()
        parent[parent < 0] = tree.root
        up[0] = parent
        for j in range(1, self.num_levels):
            up[j] = up[j - 1][up[j - 1]]
        self.up = up

    def query(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """LCA of each pair ``(u[i], v[i])``; accepts scalars or arrays."""
        u = np.atleast_1d(np.asarray(u, dtype=np.int64)).copy()
        v = np.atleast_1d(np.asarray(v, dtype=np.int64)).copy()
        if u.shape != v.shape:
            raise ValueError(f"shape mismatch: {u.shape} vs {v.shape}")
        depth = self.tree.depth
        # Make u the deeper endpoint.
        swap = depth[u] < depth[v]
        u[swap], v[swap] = v[swap], u[swap]
        # Lift u to v's depth.
        diff = depth[u] - depth[v]
        for j in range(self.num_levels):
            take = (diff >> j) & 1 == 1
            if np.any(take):
                u[take] = self.up[j][u[take]]
        # Lift both until the parents coincide.
        unequal = u != v
        for j in range(self.num_levels - 1, -1, -1):
            diverge = unequal & (self.up[j][u] != self.up[j][v])
            if np.any(diverge):
                u[diverge] = self.up[j][u[diverge]]
                v[diverge] = self.up[j][v[diverge]]
        result = np.where(unequal, self.up[0][u], u)
        return result

    def path_resistance(
        self, u: np.ndarray, v: np.ndarray, resistance_to_root: np.ndarray | None = None
    ) -> np.ndarray:
        """Tree-path electrical resistance between each pair.

        ``R_T(u, v) = R(u) + R(v) - 2 R(lca)`` with ``R`` the root-path
        resistance prefix array.
        """
        if resistance_to_root is None:
            resistance_to_root = self.tree.resistance_to_root()
        anc = self.query(u, v)
        u = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v = np.atleast_1d(np.asarray(v, dtype=np.int64))
        return (
            resistance_to_root[u]
            + resistance_to_root[v]
            - 2.0 * resistance_to_root[anc]
        )
