"""Classical spanning-tree algorithms (Kruskal, Prim, scipy fast path).

The sparsifier backbone is a *low-stretch* spanning tree
(:mod:`repro.trees.lsst`); the algorithms here provide the fast
maximum-weight baseline (= minimum-resistance tree) and the reference
implementations used to cross-check it.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graphs.graph import Graph
from repro.graphs.components import connected_components, is_connected

__all__ = [
    "DisjointSet",
    "kruskal",
    "prim",
    "minimum_spanning_tree",
    "maximum_weight_spanning_tree",
    "complete_forest",
]


class DisjointSet:
    """Union-find with union by rank and path halving."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.count = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True when they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.count -= 1
        return True


def kruskal(graph: Graph, lengths: np.ndarray | None = None) -> np.ndarray:
    """Kruskal's algorithm; returns canonical indices of an MST.

    ``lengths`` defaults to ``1 / w`` so the *default* result is the
    maximum-weight spanning tree — the natural electrical backbone
    (edges of least resistance).
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if lengths is None:
        lengths = 1.0 / graph.w
    lengths = np.asarray(lengths, dtype=np.float64)
    if lengths.shape != (graph.num_edges,):
        raise ValueError(
            f"lengths must have shape ({graph.num_edges},), got {lengths.shape}"
        )
    order = np.argsort(lengths, kind="stable")
    dsu = DisjointSet(graph.n)
    chosen = np.empty(graph.n - 1, dtype=np.int64)
    count = 0
    for e in order:
        if dsu.union(int(graph.u[e]), int(graph.v[e])):
            chosen[count] = e
            count += 1
            if count == graph.n - 1:
                break
    return np.sort(chosen[:count])


def prim(graph: Graph, lengths: np.ndarray | None = None, root: int = 0) -> np.ndarray:
    """Prim's algorithm from ``root``; returns canonical MST edge indices.

    Used as an independent oracle for Kruskal in the test suite.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if lengths is None:
        lengths = 1.0 / graph.w
    n, m = graph.n, graph.num_edges
    # Build incident-edge lists in CSR-like form.
    heads = np.concatenate([graph.u, graph.v])
    tails = np.concatenate([graph.v, graph.u])
    eids = np.tile(np.arange(m, dtype=np.int64), 2)
    sort = np.argsort(heads, kind="stable")
    heads, tails, eids = heads[sort], tails[sort], eids[sort]
    indptr = np.searchsorted(heads, np.arange(n + 1))
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    chosen: list[int] = []
    heap: list[tuple[float, int, int]] = []

    def push_edges(vertex: int) -> None:
        for k in range(indptr[vertex], indptr[vertex + 1]):
            if not in_tree[tails[k]]:
                heapq.heappush(heap, (float(lengths[eids[k]]), int(eids[k]), int(tails[k])))

    push_edges(root)
    while heap and len(chosen) < n - 1:
        _, eid, vertex = heapq.heappop(heap)
        if in_tree[vertex]:
            continue
        in_tree[vertex] = True
        chosen.append(eid)
        push_edges(vertex)
    if len(chosen) != n - 1:  # pragma: no cover - guarded by is_connected
        raise RuntimeError("Prim failed to span the graph")
    return np.sort(np.array(chosen, dtype=np.int64))


def minimum_spanning_tree(graph: Graph, lengths: np.ndarray | None = None) -> np.ndarray:
    """MST via scipy's C implementation; returns canonical edge indices.

    Falls back on exact index recovery through the canonical edge keys,
    so the result is directly usable as a tree mask.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if lengths is None:
        lengths = 1.0 / graph.w
    lengths = np.asarray(lengths, dtype=np.float64)
    matrix = sp.csr_matrix(
        (lengths, (graph.u, graph.v)), shape=(graph.n, graph.n)
    )
    tree = csgraph.minimum_spanning_tree(matrix + matrix.T).tocoo()
    # The MST keeps one triangle; map each kept entry to its edge index.
    idx = graph.edge_indices(tree.row.astype(np.int64), tree.col.astype(np.int64))
    idx = np.unique(idx[idx >= 0])
    if idx.size != graph.n - 1:  # pragma: no cover - scipy MST is exact
        raise RuntimeError("scipy MST did not return a spanning tree")
    return idx


def complete_forest(
    graph: Graph,
    forest_indices: np.ndarray,
    scores: np.ndarray | None = None,
) -> np.ndarray:
    """Canonical edge indices that reconnect a spanning forest to a tree.

    The streaming subsystem's *backbone repair*: deleting spanning-tree
    edges leaves a forest whose components must be re-bridged by the
    best surviving crossing edges.  Components are merged greedily in
    decreasing ``scores`` order (Kruskal over crossing edges only), so
    each lost tree edge is replaced by the highest-scoring edge across
    its cut that is still available.

    Parameters
    ----------
    graph:
        Host graph supplying the candidate edges.
    forest_indices:
        Canonical indices of the current forest edges (a spanning tree
        minus any number of deletions; must be cycle-free).
    scores:
        Per-edge desirability, higher is better; defaults to the edge
        weights (maximum conductance — the replacement that increases
        cut resistance least).  Ties break on the lower edge index so
        the repair is deterministic.

    Returns
    -------
    numpy.ndarray
        Sorted canonical indices of the added bridging edges; empty
        when the forest already spans the graph.

    Raises
    ------
    ValueError
        If the forest contains a cycle, or the graph has no surviving
        edges to reconnect it (it is disconnected).
    """
    forest_indices = np.asarray(forest_indices, dtype=np.int64)
    count, labels = connected_components(graph.edge_subgraph(forest_indices))
    # A cycle-free edge set on n vertices has exactly n - |E| components.
    if count != graph.n - forest_indices.size:
        raise ValueError("forest_indices contain a cycle")
    if count == 1:
        return np.array([], dtype=np.int64)
    if scores is None:
        scores = graph.w
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (graph.num_edges,):
        raise ValueError(
            f"scores must have shape ({graph.num_edges},), got {scores.shape}"
        )
    # Kruskal on the quotient: only edges crossing components matter,
    # and the union-find runs over the (few) components, not vertices.
    crossing = np.flatnonzero(labels[graph.u] != labels[graph.v])
    order = crossing[np.argsort(-scores[crossing], kind="stable")]
    dsu = DisjointSet(count)
    added: list[int] = []
    for e in order:
        if dsu.union(int(labels[graph.u[e]]), int(labels[graph.v[e]])):
            added.append(int(e))
            if dsu.count == 1:
                break
    if dsu.count != 1:
        raise ValueError(
            "graph is disconnected: no surviving edges can reconnect the forest"
        )
    return np.sort(np.array(added, dtype=np.int64))


def maximum_weight_spanning_tree(graph: Graph) -> np.ndarray:
    """Maximum-weight spanning tree = MST under lengths ``1 / w``.

    This is the classical 'best conductance backbone' heuristic that the
    low-stretch construction competes against.
    """
    return minimum_spanning_tree(graph, 1.0 / graph.w)
