"""Classical spanning-tree algorithms (Kruskal, Prim, scipy fast path).

The sparsifier backbone is a *low-stretch* spanning tree
(:mod:`repro.trees.lsst`); the algorithms here provide the fast
maximum-weight baseline (= minimum-resistance tree) and the reference
implementations used to cross-check it.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graphs.graph import Graph
from repro.graphs.components import is_connected

__all__ = [
    "DisjointSet",
    "kruskal",
    "prim",
    "minimum_spanning_tree",
    "maximum_weight_spanning_tree",
]


class DisjointSet:
    """Union-find with union by rank and path halving."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.count = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True when they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.count -= 1
        return True


def kruskal(graph: Graph, lengths: np.ndarray | None = None) -> np.ndarray:
    """Kruskal's algorithm; returns canonical indices of an MST.

    ``lengths`` defaults to ``1 / w`` so the *default* result is the
    maximum-weight spanning tree — the natural electrical backbone
    (edges of least resistance).
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if lengths is None:
        lengths = 1.0 / graph.w
    lengths = np.asarray(lengths, dtype=np.float64)
    if lengths.shape != (graph.num_edges,):
        raise ValueError(
            f"lengths must have shape ({graph.num_edges},), got {lengths.shape}"
        )
    order = np.argsort(lengths, kind="stable")
    dsu = DisjointSet(graph.n)
    chosen = np.empty(graph.n - 1, dtype=np.int64)
    count = 0
    for e in order:
        if dsu.union(int(graph.u[e]), int(graph.v[e])):
            chosen[count] = e
            count += 1
            if count == graph.n - 1:
                break
    return np.sort(chosen[:count])


def prim(graph: Graph, lengths: np.ndarray | None = None, root: int = 0) -> np.ndarray:
    """Prim's algorithm from ``root``; returns canonical MST edge indices.

    Used as an independent oracle for Kruskal in the test suite.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if lengths is None:
        lengths = 1.0 / graph.w
    n, m = graph.n, graph.num_edges
    # Build incident-edge lists in CSR-like form.
    heads = np.concatenate([graph.u, graph.v])
    tails = np.concatenate([graph.v, graph.u])
    eids = np.tile(np.arange(m, dtype=np.int64), 2)
    sort = np.argsort(heads, kind="stable")
    heads, tails, eids = heads[sort], tails[sort], eids[sort]
    indptr = np.searchsorted(heads, np.arange(n + 1))
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    chosen: list[int] = []
    heap: list[tuple[float, int, int]] = []

    def push_edges(vertex: int) -> None:
        for k in range(indptr[vertex], indptr[vertex + 1]):
            if not in_tree[tails[k]]:
                heapq.heappush(heap, (float(lengths[eids[k]]), int(eids[k]), int(tails[k])))

    push_edges(root)
    while heap and len(chosen) < n - 1:
        _, eid, vertex = heapq.heappop(heap)
        if in_tree[vertex]:
            continue
        in_tree[vertex] = True
        chosen.append(eid)
        push_edges(vertex)
    if len(chosen) != n - 1:  # pragma: no cover - guarded by is_connected
        raise RuntimeError("Prim failed to span the graph")
    return np.sort(np.array(chosen, dtype=np.int64))


def minimum_spanning_tree(graph: Graph, lengths: np.ndarray | None = None) -> np.ndarray:
    """MST via scipy's C implementation; returns canonical edge indices.

    Falls back on exact index recovery through the canonical edge keys,
    so the result is directly usable as a tree mask.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected to have a spanning tree")
    if lengths is None:
        lengths = 1.0 / graph.w
    lengths = np.asarray(lengths, dtype=np.float64)
    matrix = sp.csr_matrix(
        (lengths, (graph.u, graph.v)), shape=(graph.n, graph.n)
    )
    tree = csgraph.minimum_spanning_tree(matrix + matrix.T).tocoo()
    # The MST keeps one triangle; map each kept entry to its edge index.
    idx = graph.edge_indices(tree.row.astype(np.int64), tree.col.astype(np.int64))
    idx = np.unique(idx[idx >= 0])
    if idx.size != graph.n - 1:  # pragma: no cover - scipy MST is exact
        raise RuntimeError("scipy MST did not return a spanning tree")
    return idx


def maximum_weight_spanning_tree(graph: Graph) -> np.ndarray:
    """Maximum-weight spanning tree = MST under lengths ``1 / w``.

    This is the classical 'best conductance backbone' heuristic that the
    low-stretch construction competes against.
    """
    return minimum_spanning_tree(graph, 1.0 / graph.w)
