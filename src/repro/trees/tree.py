"""Rooted spanning tree representation.

A spanning tree of a :class:`~repro.graphs.Graph` is stored as the set of
canonical edge indices plus derived parent/depth/order arrays produced by
a BFS from the root.  Both the O(n) tree solver and the LCA/stretch
machinery consume this structure.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graphs.graph import Graph

__all__ = ["RootedTree"]


class RootedTree:
    """A rooted spanning tree over the vertices of a graph.

    Attributes
    ----------
    n : int
        Number of vertices.
    root : int
        Root vertex.
    parent : ndarray
        ``parent[v]`` is v's parent; ``-1`` at the root.
    parent_weight : ndarray
        Weight of the edge ``(v, parent[v])``; 0 at the root.
    depth : ndarray
        Hop distance from the root.
    order : ndarray
        Vertices in BFS order (every parent precedes its children).
    edge_indices : ndarray
        Canonical indices (into the source graph's edge arrays) of the
        ``n - 1`` tree edges.
    """

    __slots__ = (
        "n",
        "root",
        "parent",
        "parent_weight",
        "depth",
        "order",
        "edge_indices",
        "_levels",
    )

    def __init__(
        self,
        n: int,
        root: int,
        parent: np.ndarray,
        parent_weight: np.ndarray,
        depth: np.ndarray,
        order: np.ndarray,
        edge_indices: np.ndarray,
    ) -> None:
        self.n = n
        self.root = root
        self.parent = parent
        self.parent_weight = parent_weight
        self.depth = depth
        self.order = order
        self.edge_indices = edge_indices
        self._levels: list[np.ndarray] | None = None

    @classmethod
    def from_graph(
        cls, graph: Graph, edge_indices: np.ndarray, root: int = 0
    ) -> "RootedTree":
        """Root the spanning tree given by canonical ``edge_indices``.

        Raises if the edges do not form a spanning tree of the graph.
        """
        edge_indices = np.asarray(edge_indices, dtype=np.int64)
        n = graph.n
        if edge_indices.size != max(n - 1, 0):
            raise ValueError(
                f"spanning tree of {n} vertices needs {n - 1} edges, "
                f"got {edge_indices.size}"
            )
        tu = graph.u[edge_indices]
        tv = graph.v[edge_indices]
        tw = graph.w[edge_indices]
        adj = sp.csr_matrix(
            (
                np.concatenate([tw, tw]),
                (np.concatenate([tu, tv]), np.concatenate([tv, tu])),
            ),
            shape=(n, n),
        )
        order, predecessors = csgraph.breadth_first_order(
            adj, i_start=root, directed=False, return_predecessors=True
        )
        if order.size != n:
            raise ValueError("edge set does not span the graph (disconnected)")
        parent = predecessors.astype(np.int64)
        parent[root] = -1
        depth = np.zeros(n, dtype=np.int64)
        for v in order[1:]:
            depth[v] = depth[parent[v]] + 1
        # Parent edge weights via canonical lookup.
        parent_weight = np.zeros(n, dtype=np.float64)
        non_root = order[1:]
        idx = graph.edge_indices(non_root, parent[non_root])
        if np.any(idx < 0):  # pragma: no cover - BFS edges exist by construction
            raise RuntimeError("tree edge missing from graph")
        parent_weight[non_root] = graph.w[idx]
        return cls(
            n,
            root,
            parent,
            parent_weight,
            depth,
            order.astype(np.int64),
            edge_indices,
        )

    # ------------------------------------------------------------------
    def levels(self) -> list[np.ndarray]:
        """Vertices grouped by depth, ``levels()[d]`` at depth ``d`` (cached)."""
        if self._levels is None:
            max_depth = int(self.depth.max()) if self.n else 0
            order_by_depth = np.argsort(self.depth, kind="stable")
            boundaries = np.searchsorted(
                self.depth[order_by_depth], np.arange(max_depth + 2)
            )
            self._levels = [
                order_by_depth[boundaries[d] : boundaries[d + 1]]
                for d in range(max_depth + 1)
            ]
        return self._levels

    def subtree_sizes(self) -> np.ndarray:
        """Number of vertices in each vertex's subtree (itself included)."""
        sizes = np.ones(self.n, dtype=np.int64)
        for level in reversed(self.levels()[1:]):
            np.add.at(sizes, self.parent[level], sizes[level])
        return sizes

    def resistance_to_root(self) -> np.ndarray:
        """Electrical resistance (sum of 1/w) along each root path."""
        res = np.zeros(self.n, dtype=np.float64)
        for level in self.levels()[1:]:
            res[level] = res[self.parent[level]] + 1.0 / self.parent_weight[level]
        return res

    def depth_of(self) -> np.ndarray:
        """Alias for the ``depth`` array (API symmetry)."""
        return self.depth

    def as_graph(self, graph: Graph) -> Graph:
        """The spanning tree as a standalone :class:`Graph`."""
        return graph.edge_subgraph(self.edge_indices)

    def path_to_root(self, vertex: int) -> np.ndarray:
        """Vertex sequence from ``vertex`` up to (and including) the root."""
        path = [vertex]
        while self.parent[path[-1]] >= 0:
            path.append(int(self.parent[path[-1]]))
        return np.array(path, dtype=np.int64)
