"""Table 4 — complex-network sparsification (paper Section 4.4).

Sparsify FEM/random/social/k-NN networks to σ² ≈ 100 and report the
extraction time ``T_tot``, the edge reduction ``|E|/|E_s|``, the drop of
the dominant generalized eigenvalue ``λ₁/λ̃₁`` from the tree backbone to
the final sparsifier, and the time to compute the first ten Laplacian
eigenvectors on the original vs sparsified graph.

Expected shape (paper): edge reductions of ~3–40×, λ₁ ratios ≫ 100 and
clearly faster eigensolves on the sparsifier.
"""

from __future__ import annotations

from repro.apps.network_simplify import simplify_network
from repro.experiments.common import ExperimentCase, scaled_size, write_csv
from repro.graphs import generators
from repro.utils.tables import format_si, format_table

__all__ = ["cases", "run", "main", "HEADERS"]

HEADERS = [
    "Test case",
    "paper case",
    "|V|",
    "|E|",
    "T_tot (s)",
    "|E|/|Es|",
    "lam1/lam1~",
    "T_eig^o (s)",
    "T_eig^s (s)",
]


def cases(scale: float | None = None) -> list[ExperimentCase]:
    """Table 4 workloads: fe_tooth / appu / coAuthorsDBLP / auto / RCV-80NN."""
    n_fem = scaled_size(6000, scale, minimum=600)
    n_er = scaled_size(2500, scale, minimum=300)
    n_ba = scaled_size(15000, scale, minimum=1500)
    n_auto = scaled_size(9000, scale, minimum=900)
    n_knn = scaled_size(5000, scale, minimum=500)
    return [
        ExperimentCase(
            "fem_cube_3d", "fe_tooth",
            lambda: generators.fem_mesh_3d(n_fem, seed=41, shape="cube"),
        ),
        ExperimentCase(
            "dense_random", "appu",
            lambda: generators.erdos_renyi_gnm(n_er, 55 * n_er, seed=42),
        ),
        ExperimentCase(
            "scale_free", "coAuthorsDBLP",
            lambda: generators.barabasi_albert(n_ba, 4, seed=43),
        ),
        ExperimentCase(
            "fem_annulus_3d", "auto",
            lambda: generators.fem_mesh_3d(n_auto, seed=44, shape="annulus"),
        ),
        ExperimentCase(
            "knn_mixture", "RCV-80NN",
            lambda: generators.knn_graph(
                generators.gaussian_mixture_points(n_knn, dim=16, clusters=8, seed=45),
                k=40,
            ),
        ),
    ]


def run(
    scale: float | None = None,
    seed: int = 0,
    sigma2: float = 100.0,
    time_eigensolves: bool = True,
) -> list[list]:
    """Regenerate Table 4 rows."""
    rows = []
    for case in cases(scale):
        graph = case.make()
        report = simplify_network(
            graph, sigma2=sigma2, seed=seed, time_eigensolves=time_eigensolves
        )
        rows.append(
            [
                case.name,
                case.paper_name,
                format_si(graph.n),
                format_si(graph.num_edges),
                round(report.total_seconds, 2),
                f"{report.edge_reduction:.1f}x",
                f"{report.lambda1_ratio:,.0f}x",
                round(report.eig_seconds_original, 2),
                round(report.eig_seconds_sparsified, 2),
            ]
        )
    return rows


def main() -> None:
    rows = run()
    print(format_table(HEADERS, rows, title="Table 4: complex network sparsification"))
    path = write_csv("table4.csv", HEADERS, rows)
    print(f"\nwritten: {path}")


if __name__ == "__main__":
    main()
