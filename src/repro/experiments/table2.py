"""Table 2 — the iterative SDD solver (paper Section 4.2).

For five circuit/thermal/ecology/FEM-style graphs, build σ²=50 and
σ²=200 similarity-aware sparsifier preconditioners and solve a random-
RHS system with PCG to ``‖Ax−b‖ ≤ 1e-3‖b‖``, reporting the sparsifier
density ``|E_σ²|/|V|``, the PCG iteration count ``N_σ²`` and the
sparsification time ``T_σ²``.

Expected shape (paper): denser σ²=50 preconditioners converge in about
half the iterations of σ²=200 ones, at higher sparsification cost.
"""

from __future__ import annotations

import numpy as np

from repro.apps.sdd_solver import SimilarityAwareSolver
from repro.experiments.common import ExperimentCase, scaled_size, write_csv
from repro.graphs import generators
from repro.utils.rng import as_rng
from repro.utils.tables import format_si, format_table

__all__ = ["cases", "run", "main", "HEADERS"]

HEADERS = [
    "Graph",
    "paper case",
    "|V|",
    "|E|",
    "|E50|/|V|",
    "N50",
    "T50 (s)",
    "|E200|/|V|",
    "N200",
    "T200 (s)",
]


def cases(scale: float | None = None) -> list[ExperimentCase]:
    """Table 2 workloads: the paper's G3/thermal2/ecology2/tmt/parabolic."""
    side = scaled_size(120, scale, minimum=24)
    return [
        ExperimentCase(
            "circuit_grid", "G3_circuit",
            lambda: generators.circuit_grid(side, side, layers=2, seed=21),
        ),
        ExperimentCase(
            "thermal_stack", "thermal2",
            lambda: generators.thermal_stack(side // 2, side // 2, 8, seed=22),
        ),
        ExperimentCase(
            "ecology_grid", "ecology2",
            lambda: generators.ecology_grid(side, side, seed=23),
        ),
        ExperimentCase(
            "triangulated_grid", "tmt_sym",
            lambda: generators.triangulated_grid(side, side, weights="uniform", seed=24),
        ),
        ExperimentCase(
            "graded_fem_2d", "parabolic_fem",
            lambda: generators.fem_mesh_2d(side * side // 2, seed=25, graded=True),
        ),
    ]


def run(
    scale: float | None = None,
    seed: int = 0,
    tol: float = 1e-3,
    sigma2_pair: tuple[float, float] = (50.0, 200.0),
) -> list[list]:
    """Regenerate Table 2 rows."""
    rows = []
    for case in cases(scale):
        graph = case.make()
        rng = as_rng(seed)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        row: list = [case.name, case.paper_name,
                     format_si(graph.n), format_si(graph.num_edges)]
        for sigma2 in sigma2_pair:
            solver = SimilarityAwareSolver(graph, sigma2=sigma2, seed=seed)
            report = solver.solve(b, tol=tol)
            if not report.solve.converged:  # pragma: no cover - ample budget
                raise RuntimeError(f"{case.name}: PCG failed at sigma2={sigma2}")
            row.extend(
                [
                    round(report.density, 3),
                    report.iterations,
                    round(report.sparsify_seconds, 2),
                ]
            )
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print(format_table(HEADERS, rows, title="Table 2: iterative SDD matrix solver"))
    path = write_csv("table2.csv", HEADERS, rows)
    print(f"\nwritten: {path}")


if __name__ == "__main__":
    main()
