"""Experiment regenerators: one module per paper table/figure + ablations.

Run any of them as a script, e.g.::

    python -m repro.experiments.table2

Problem sizes scale with the ``REPRO_SCALE`` environment variable.
Submodules (``table1`` … ``table4``, ``figure1``, ``figure2``,
``ablations``) are intentionally not imported here so ``python -m``
execution stays warning-free; import them explicitly.
"""

__all__ = [
    "common",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "ablations",
]
