"""Shared experiment infrastructure: scaling, cases, CSV export.

Every experiment module exposes ``run(scale=None, seed=...) -> rows`` and
a ``main()`` that prints the paper-style table.  Problem sizes are the
paper's topology families scaled down for a single-core pure-Python
environment; the ``REPRO_SCALE`` environment variable (default 1.0)
multiplies all vertex budgets so larger runs need no code change.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.graphs.graph import Graph

__all__ = [
    "ExperimentCase",
    "env_scale",
    "scaled_size",
    "results_dir",
    "write_csv",
]


@dataclass(frozen=True)
class ExperimentCase:
    """A named workload: the paper's test-case stand-in.

    Attributes
    ----------
    name:
        Our generator-based name.
    paper_name:
        The SuiteSparse matrix it stands in for.
    make:
        Zero-argument factory producing the graph (deterministic).
    """

    name: str
    paper_name: str
    make: Callable[[], Graph]


def env_scale(default: float = 1.0) -> float:
    """Global problem-size multiplier from ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


def scaled_size(base: int, scale: float | None, minimum: int = 16) -> int:
    """Scale a vertex budget, flooring at ``minimum``."""
    factor = env_scale() if scale is None else scale
    return max(minimum, int(round(base * factor)))


def results_dir() -> Path:
    """Directory where experiments drop CSV artifacts (created on demand)."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", Path.cwd() / "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def write_csv(
    filename: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> Path:
    """Write experiment rows as CSV under :func:`results_dir`."""
    path = results_dir() / filename
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
