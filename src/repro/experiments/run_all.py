"""Run every experiment regenerator in sequence.

Convenience entry point::

    python -m repro.experiments.run_all

Prints each paper table/figure reproduction and drops the CSV artifacts
under ``results/``.  Sizes honour ``REPRO_SCALE``.
"""

from __future__ import annotations

import importlib

from repro.utils.timing import Timer

EXPERIMENTS = [
    "repro.experiments.table1",
    "repro.experiments.table2",
    "repro.experiments.table3",
    "repro.experiments.table4",
    "repro.experiments.figure1",
    "repro.experiments.figure2",
    "repro.experiments.ablations",
]


def main() -> None:
    total = Timer()
    with total:
        for name in EXPERIMENTS:
            module = importlib.import_module(name)
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            with Timer() as t:
                module.main()
            print(f"[{name.split('.')[-1]} done in {t.elapsed:.1f}s]")
    print(f"\nall experiments regenerated in {total.elapsed:.1f}s")


if __name__ == "__main__":
    main()
