"""Table 3 — the scalable spectral graph partitioner (paper Section 4.3).

For the Table 2 families plus random-weight 2-D meshes, compute the
approximate Fiedler vector with (a) a direct factorization of ``L_G``
and (b) PCG preconditioned by the σ²≤200 sparsifier, then sign-cut and
compare: balance ``|V₊|/|V₋|``, solve time and memory for both solvers,
and the relative sign disagreement ``Rel.Err = |V_dif|/|V|``.

Expected shape (paper): the iterative solver needs a fraction of the
direct solver's memory (and time at scale), with Rel.Err ≲ a few
percent.
"""

from __future__ import annotations

from repro.apps.partitioner import partition_graph
from repro.experiments.common import ExperimentCase, scaled_size, write_csv
from repro.graphs import generators
from repro.spectral.partition import partition_disagreement
from repro.utils.tables import format_si, format_table

__all__ = ["cases", "run", "main", "HEADERS"]

HEADERS = [
    "Graph",
    "paper case",
    "|V|",
    "|V+|/|V-|",
    "T_D (s)",
    "M_D (MB)",
    "T_I (s)",
    "M_I (MB)",
    "Rel.Err",
]


def cases(scale: float | None = None) -> list[ExperimentCase]:
    """Table 3 workloads (Table 2 families + synthetic random-weight meshes)."""
    side = scaled_size(110, scale, minimum=24)
    mesh = scaled_size(140, scale, minimum=32)
    return [
        ExperimentCase(
            "circuit_grid", "G3_circuit",
            lambda: generators.circuit_grid(side, side, layers=2, seed=31),
        ),
        ExperimentCase(
            "thermal_stack", "thermal2",
            lambda: generators.thermal_stack(side // 2, side // 2, 8, seed=32),
        ),
        ExperimentCase(
            "ecology_grid", "ecology2",
            lambda: generators.ecology_grid(side, side, seed=33),
        ),
        ExperimentCase(
            "triangulated_grid", "tmt_sym",
            lambda: generators.triangulated_grid(side, side, weights="uniform", seed=34),
        ),
        ExperimentCase(
            "graded_fem_2d", "parabolic_fem",
            lambda: generators.fem_mesh_2d(side * side // 2, seed=35, graded=True),
        ),
        ExperimentCase(
            "mesh_a", "mesh_1M",
            lambda: generators.grid2d(mesh, mesh, weights="uniform", seed=36),
        ),
        ExperimentCase(
            "mesh_b", "mesh_4M",
            lambda: generators.grid2d(2 * mesh, mesh, weights="uniform", seed=37),
        ),
        ExperimentCase(
            "mesh_c", "mesh_9M",
            lambda: generators.grid2d(2 * mesh, 2 * mesh, weights="uniform", seed=38),
        ),
    ]


def run(
    scale: float | None = None,
    seed: int = 0,
    sigma2: float = 200.0,
    iterations: int = 8,
) -> list[list]:
    """Regenerate Table 3 rows."""
    rows = []
    for case in cases(scale):
        graph = case.make()
        direct = partition_graph(
            graph, method="direct", iterations=iterations, seed=seed
        )
        iterative = partition_graph(
            graph, method="sparsifier", sigma2=sigma2, iterations=iterations,
            seed=seed,
        )
        rel_err = partition_disagreement(direct.labels, iterative.labels)
        rows.append(
            [
                case.name,
                case.paper_name,
                format_si(graph.n),
                round(iterative.balance, 3),
                round(direct.solve_seconds, 3),
                round(direct.memory_bytes / 1e6, 2),
                round(iterative.solve_seconds, 3),
                round(iterative.memory_bytes / 1e6, 2),
                f"{rel_err:.1e}",
            ]
        )
    return rows


def main() -> None:
    rows = run()
    print(format_table(HEADERS, rows, title="Table 3: spectral graph partitioning"))
    path = write_csv("table3.csv", HEADERS, rows)
    print(f"\nwritten: {path}")


if __name__ == "__main__":
    main()
