"""Table 1 — accuracy of the extreme generalized eigenvalue estimators.

For five FEM/structural/protein-style graphs, compare the paper's
estimators (§3.6: ≤10 generalized power iterations for λmax, node
coloring for λmin) against the *exact* extreme generalized eigenvalues
of the pencil ``(L_G, L_P)``, where ``P`` is the σ²=100 similarity-aware
sparsifier — reporting both values and relative errors like the paper.

The exact reference uses the dense solver on ``1⊥`` (more accurate than
Matlab's ``eigs`` at these sizes), so cases are sized ≈1–2k vertices.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentCase,
    scaled_size,
    write_csv,
)
from repro.graphs import generators
from repro.solvers.cholesky import DirectSolver
from repro.spectral.eigs import exact_extreme_generalized_eigs
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.sparsify.similarity_aware import sparsify_graph
from repro.utils.tables import format_table

__all__ = ["cases", "run", "main", "HEADERS"]

HEADERS = [
    "Test case",
    "paper case",
    "lmin",
    "lmin_est",
    "eps_min",
    "lmax",
    "lmax_est",
    "eps_max",
]


def cases(scale: float | None = None) -> list[ExperimentCase]:
    """The five Table 1 workloads (stand-ins documented in DESIGN.md)."""
    n_fem = scaled_size(1200, scale)
    n_mesh = scaled_size(34, scale, minimum=8)
    return [
        ExperimentCase(
            "fem_annulus_3d", "fe_rotor",
            lambda: generators.fem_mesh_3d(n_fem, seed=11, shape="annulus"),
        ),
        ExperimentCase(
            "protein_contact", "pdb1HYS",
            lambda: generators.protein_contact_graph(n_fem, seed=12),
        ),
        ExperimentCase(
            "shell_mesh_a", "bcsstk36",
            lambda: generators.shell_mesh(n_mesh, n_mesh, seed=13),
        ),
        ExperimentCase(
            "fem_cube_3d", "brack2",
            lambda: generators.fem_mesh_3d(n_fem, seed=14, shape="cube"),
        ),
        ExperimentCase(
            "shell_mesh_b", "raefsky3",
            lambda: generators.shell_mesh(n_mesh + 6, n_mesh - 6, seed=15),
        ),
    ]


def run(
    scale: float | None = None,
    seed: int = 0,
    sigma2: float = 100.0,
    power_iterations: int = 8,
) -> list[list]:
    """Regenerate Table 1 rows: exact vs estimated pencil extremes."""
    rows = []
    for case in cases(scale):
        graph = case.make()
        result = sparsify_graph(graph, sigma2=sigma2, seed=seed)
        sparsifier = result.sparsifier
        lmin_exact, lmax_exact = exact_extreme_generalized_eigs(
            graph.laplacian(), sparsifier.laplacian()
        )
        solver = DirectSolver(sparsifier.laplacian().tocsc())
        lmax_est = estimate_lambda_max(
            graph, sparsifier, solver, iterations=power_iterations, seed=seed
        )
        lmin_est = estimate_lambda_min(graph, sparsifier)
        rows.append(
            [
                case.name,
                case.paper_name,
                round(lmin_exact, 3),
                round(lmin_est, 3),
                f"{abs(lmin_est - lmin_exact) / lmin_exact:.1%}",
                round(lmax_exact, 1),
                round(lmax_est, 1),
                f"{abs(lmax_est - lmax_exact) / lmax_exact:.1%}",
            ]
        )
    return rows


def main() -> None:
    rows = run()
    print(format_table(HEADERS, rows, title="Table 1: extreme eigenvalue estimation"))
    path = write_csv("table1.csv", HEADERS, rows)
    print(f"\nwritten: {path}")


if __name__ == "__main__":
    main()
