"""Figure 1 — spectral drawings of the airfoil graph and its sparsifier.

The paper shows that the sparsifier's spectral drawing (vertex
coordinates = first two nontrivial Laplacian eigenvectors [10]) is
visually indistinguishable from the original's.  The reproduction
exports both coordinate sets to CSV (plot-ready) and quantifies the
agreement with the orthogonal-Procrustes alignment error and the
principal angles between the drawing subspaces — both should be small
when the sparsifier is spectrally similar.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import scaled_size, write_csv
from repro.graphs import generators
from repro.spectral.embedding import (
    procrustes_alignment_error,
    spectral_coordinates,
    subspace_angles_degrees,
)
from repro.sparsify.similarity_aware import sparsify_graph
from repro.utils.tables import format_table

__all__ = ["run", "main", "HEADERS"]

HEADERS = [
    "graph",
    "|V|",
    "|E|",
    "|Es|",
    "sigma2_est",
    "procrustes_err",
    "max_angle_deg",
]


def run(
    scale: float | None = None,
    seed: int = 0,
    sigma2: float = 30.0,
    dim: int = 2,
) -> dict:
    """Regenerate Figure 1: drawings + alignment metrics.

    Returns a dict with the coordinate arrays and the metric row, and
    writes ``figure1_original.csv`` / ``figure1_sparsifier.csv``.
    """
    n = scaled_size(3000, scale, minimum=300)
    graph = generators.airfoil_mesh(n, seed=16)
    result = sparsify_graph(graph, sigma2=sigma2, seed=seed)
    coords_g = spectral_coordinates(graph, dim=dim, seed=seed)
    coords_p = spectral_coordinates(result.sparsifier, dim=dim, seed=seed)
    err = procrustes_alignment_error(coords_g, coords_p)
    angles = subspace_angles_degrees(coords_g, coords_p)
    write_csv(
        "figure1_original.csv",
        [f"x{i}" for i in range(dim)],
        np.round(coords_g, 8).tolist(),
    )
    write_csv(
        "figure1_sparsifier.csv",
        [f"x{i}" for i in range(dim)],
        np.round(coords_p, 8).tolist(),
    )
    row = [
        "airfoil_mesh",
        graph.n,
        graph.num_edges,
        result.sparsifier.num_edges,
        round(result.sigma2_estimate, 1),
        f"{err:.3f}",
        f"{float(angles.max()):.2f}",
    ]
    return {
        "coords_original": coords_g,
        "coords_sparsifier": coords_p,
        "row": row,
        "result": result,
    }


def main() -> None:
    output = run()
    print(
        format_table(HEADERS, [output["row"]],
                     title="Figure 1: spectral drawing alignment")
    )
    print("\ncoordinates written to results/figure1_*.csv")


if __name__ == "__main__":
    main()
