"""Figure 2 — spectral edge ranking and filtering by normalized Joule heat.

For a G2-circuit-style grid and a thermal-style stack, compute the
off-tree Joule heats with a **one-step** generalized power iteration
(as the paper's Fig. 2 caption specifies), sort them in descending
normalized order and mark the θ_σ thresholds for σ² = 100 and σ² = 500
(Eq. 15).  The characteristic sharp knee — "not too many large
generalized eigenvalues" [21] — shows as a tiny pass count relative to
the number of off-tree edges.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentCase, scaled_size, write_csv
from repro.graphs import generators
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.filtering import heat_threshold, normalized_heats
from repro.sparsify.similarity_aware import sparsify_graph
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.trees.lsst import low_stretch_tree
from repro.trees.tree import RootedTree
from repro.trees.tree_solver import TreeSolver
from repro.utils.tables import format_table

__all__ = ["cases", "run", "main", "HEADERS"]

HEADERS = [
    "case",
    "paper case",
    "off-tree edges",
    "theta(s2=100)",
    "above(s2=100)",
    "theta(s2=500)",
    "above(s2=500)",
    "pipeline_added(s2=100)",
    "knee(top1%/median)",
]


def cases(scale: float | None = None) -> list[ExperimentCase]:
    side = scaled_size(70, scale, minimum=20)
    return [
        ExperimentCase(
            "circuit_grid", "G2_circuit",
            lambda: generators.circuit_grid(side, side, layers=2, seed=26),
        ),
        ExperimentCase(
            "thermal_stack", "thermal1",
            lambda: generators.thermal_stack(side // 2, side // 2, 6, seed=27),
        ),
    ]


def run(
    scale: float | None = None,
    seed: int = 0,
    t: int = 1,
    sigma2_levels: tuple[float, float] = (100.0, 500.0),
) -> dict:
    """Regenerate Figure 2: per-case sorted heat series and thresholds."""
    rows = []
    series: dict[str, dict] = {}
    for case in cases(scale):
        graph = case.make()
        tree_idx = low_stretch_tree(graph, seed=seed)
        solver = TreeSolver(RootedTree.from_graph(graph, tree_idx))
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[tree_idx] = True
        off = np.flatnonzero(~mask)
        heats = joule_heats(graph, solver, off, t=t, seed=seed)
        norm = np.sort(normalized_heats(heats))[::-1]
        sparsifier = graph.edge_subgraph(tree_idx)
        lam_max = estimate_lambda_max(graph, sparsifier, solver, seed=seed)
        lam_min = estimate_lambda_min(graph, sparsifier)
        thresholds = {
            s2: heat_threshold(s2, lam_min, lam_max, t=t) for s2 in sigma2_levels
        }
        above = {s2: int((norm >= th).sum()) for s2, th in thresholds.items()}
        top1 = norm[max(1, norm.size // 100) - 1]
        knee = float(top1 / max(np.median(norm), 1e-300))
        # Context: what the full similarity-aware pipeline actually adds at
        # σ² = 100 — the iterative re-estimation tightens θ far beyond the
        # permissive iteration-1 value shown above.
        pipeline = sparsify_graph(graph, sigma2=float(sigma2_levels[0]), seed=seed)
        rows.append(
            [
                case.name,
                case.paper_name,
                off.size,
                f"{thresholds[sigma2_levels[0]]:.2e}",
                above[sigma2_levels[0]],
                f"{thresholds[sigma2_levels[1]]:.2e}",
                above[sigma2_levels[1]],
                pipeline.num_off_tree_edges,
                f"{knee:,.0f}x",
            ]
        )
        series[case.name] = {
            "sorted_normalized_heats": norm,
            "thresholds": thresholds,
        }
        write_csv(
            f"figure2_{case.name}.csv",
            ["rank", "normalized_heat"],
            [[i + 1, f"{h:.6e}"] for i, h in enumerate(norm)],
        )
    return {"rows": rows, "series": series}


def main() -> None:
    output = run()
    print(
        format_table(
            HEADERS, output["rows"],
            title="Figure 2: spectral edge ranking and filtering",
        )
    )
    print("\nheat series written to results/figure2_*.csv")


if __name__ == "__main__":
    main()
