"""Ablation studies for the design choices called out in DESIGN.md.

Four sweeps on reference graphs small enough for the *exact* condition
number:

- ``tree``: backbone quality (AKPW vs SPT vs max-weight vs random);
- ``t``: power-iteration depth of the heat embedding;
- ``r``: number of random probe vectors;
- ``similarity``: the §3.7 dissimilarity check on/off;
- ``baselines``: similarity-aware filtering vs uniform and
  effective-resistance sampling at a *matched* edge budget.

Each row reports the achieved exact κ(L_G, L_P) and the edge budget, so
the benefit of every ingredient is directly visible.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import scaled_size, write_csv
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.sparsify.baselines import (
    effective_resistance_sparsifier,
    uniform_sparsifier,
)
from repro.sparsify.metrics import exact_condition_number
from repro.sparsify.similarity_aware import sparsify_graph
from repro.utils.tables import format_table

__all__ = ["reference_graph", "run", "main", "HEADERS"]

HEADERS = ["sweep", "setting", "edges", "kappa_exact", "sigma2_est", "iterations"]


def reference_graph(scale: float | None = None) -> Graph:
    """Heavy-tailed-weight grid where edge selection quality matters.

    Lognormal conductances make a small set of off-tree edges spectrally
    critical — the regime the similarity-aware filter is designed for —
    while staying small enough for exact dense reference eigensolves.
    The side length is floored at 26 so the spanning tree alone never
    meets the σ² target (otherwise every method degenerates to the tree
    and the sweeps are uninformative).
    """
    side = scaled_size(26, scale, minimum=26)
    return generators.grid2d(side, side, weights="lognormal", seed=51, spread=2.0)


def _row(sweep: str, setting: str, graph: Graph, result) -> list:
    kappa = exact_condition_number(graph, result.sparsifier)
    return [
        sweep,
        setting,
        result.sparsifier.num_edges,
        round(kappa, 1),
        round(result.sigma2_estimate, 1),
        len(result.iterations),
    ]


def run(scale: float | None = None, seed: int = 0, sigma2: float = 100.0) -> list[list]:
    """Run all ablation sweeps; returns table rows."""
    graph = reference_graph(scale)
    rows: list[list] = []

    for method in ("akpw", "spt", "maxw", "random"):
        result = sparsify_graph(graph, sigma2=sigma2, tree_method=method, seed=seed)
        rows.append(_row("tree", method, graph, result))

    for t in (1, 2, 3):
        result = sparsify_graph(graph, sigma2=sigma2, t=t, seed=seed)
        rows.append(_row("t", str(t), graph, result))

    log_n = max(4, int(np.ceil(np.log2(graph.n))))
    for r in (2, log_n, 2 * log_n):
        result = sparsify_graph(graph, sigma2=sigma2, num_vectors=r, seed=seed)
        rows.append(_row("r", str(r), graph, result))

    for mode in ("endpoint", "neighborhood", "none"):
        result = sparsify_graph(graph, sigma2=sigma2, similarity_mode=mode, seed=seed)
        rows.append(_row("similarity", mode, graph, result))

    # Baselines at the similarity-aware pipeline's edge budget.  Uniform
    # sampling is high-variance, so its κ is averaged over three seeds.
    reference = sparsify_graph(graph, sigma2=sigma2, seed=seed)
    budget = reference.num_off_tree_edges
    uniform_kappas = [
        exact_condition_number(graph, uniform_sparsifier(graph, budget, seed=s))
        for s in (seed, seed + 1, seed + 2)
    ]
    rows.append(
        [
            "baseline",
            "uniform",
            reference.sparsifier.num_edges,
            round(float(np.mean(uniform_kappas)), 1),
            float("nan"),
            0,
        ]
    )
    ss = effective_resistance_sparsifier(
        graph, num_samples=reference.sparsifier.num_edges * 3, seed=seed
    )
    rows.append(
        [
            "baseline",
            "effective_resistance",
            ss.num_edges,
            round(exact_condition_number(graph, ss), 1),
            float("nan"),
            0,
        ]
    )
    rows.append(_row("baseline", "similarity_aware", graph, reference))

    # Optional §3.1 edge re-scaling on top of the reference sparsifier:
    # global rescaling optimizes the two-sided Eq. 2 similarity σ (κ is
    # scale-invariant); off-tree tuning can lower κ itself.
    from repro.sparsify.rescaling import rescale_for_similarity, tune_off_tree_scale
    from repro.spectral.eigs import dense_generalized_eigs

    def exact_two_sided_sigma(sparsifier) -> float:
        vals = dense_generalized_eigs(graph.laplacian(), sparsifier.laplacian())
        return float(max(vals[-1], 1.0 / vals[0]))

    rows.append(
        [
            "rescale",
            "off (sigma Eq.2)",
            reference.sparsifier.num_edges,
            round(exact_condition_number(graph, reference.sparsifier), 1),
            round(exact_two_sided_sigma(reference.sparsifier), 2),
            0,
        ]
    )
    global_rescale = rescale_for_similarity(graph, reference.sparsifier, seed=seed)
    rows.append(
        [
            "rescale",
            "global (sigma Eq.2)",
            global_rescale.sparsifier.num_edges,
            round(exact_condition_number(graph, global_rescale.sparsifier), 1),
            round(exact_two_sided_sigma(global_rescale.sparsifier), 2),
            0,
        ]
    )
    tuned = tune_off_tree_scale(
        graph, reference.sparsifier, reference.tree_indices, seed=seed
    )
    rows.append(
        [
            "rescale",
            f"off-tree x{tuned.scale:g}",
            tuned.sparsifier.num_edges,
            round(exact_condition_number(graph, tuned.sparsifier), 1),
            round(exact_two_sided_sigma(tuned.sparsifier), 2),
            0,
        ]
    )
    return rows


def main() -> None:
    rows = run()
    print(format_table(HEADERS, rows, title="Ablations: design-choice sweeps"))
    path = write_csv("ablations.csv", HEADERS, rows)
    print(f"\nwritten: {path}")


if __name__ == "__main__":
    main()
