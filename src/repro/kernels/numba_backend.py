"""``numba`` backend: JIT loops for the traversal-shaped kernels.

The two kernels whose reference implementations are irreducibly
sequential Python loops — the greedy endpoint-marking ``scoring``
selection and the AKPW label-claim walk inside ``lsst`` — compile to
tight machine loops under numba while keeping the *exact* sequential
semantics, so parity with ``reference`` is structural rather than
argued.  The ``lsst`` backend additionally JIT-compiles the two tree
cores that are written in the nopython subset at their definition
sites: the Borůvka union loop
(:func:`repro.trees.lsst.boruvka_union_core`, passed through the
``boruvka_core`` hook) and Tarjan's offline LCA
(:func:`repro.trees.tarjan_lca.tarjan_lca_core`, which self-gates its
own JIT wrap so stretch computation speeds up wherever it is called
from).  ``embedding`` and ``filtering`` are already whole-array numpy
and register no numba variant; the registry's per-kernel fallback
chain resolves them to ``vectorized`` automatically.

numba is an optional dependency: when it is absent this module defines
nothing, :func:`repro.kernels.registry.resolve_backend` degrades
``"numba"`` requests to ``"vectorized"``, and nothing else changes —
the CI ``backend-matrix`` job runs the parity suite both ways.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import HAS_NUMBA, register_impl
from repro.kernels.vectorized import scoring as _vectorized_scoring
from repro.trees.lsst import boruvka_union_core, low_stretch_tree

if HAS_NUMBA:  # pragma: no cover - exercised by the CI backend matrix
    import numba

    # The Borůvka union loop is authored in the nopython subset at its
    # definition site, so the JIT wrap is a plain decoration here.
    boruvka_core = numba.njit(cache=True)(boruvka_union_core)

    @numba.njit(cache=True)
    def _greedy_endpoint(u, v, candidates, n, cap):
        """The sequential endpoint-marking greedy loop, compiled."""
        marked = np.zeros(n, dtype=np.bool_)
        out = np.empty(min(cap, candidates.size), dtype=np.int64)
        count = 0
        for i in range(candidates.size):
            if count >= cap:
                break
            e = candidates[i]
            p = u[e]
            q = v[e]
            if marked[p] and marked[q]:
                continue
            marked[p] = True
            marked[q] = True
            out[count] = e
            count += 1
        return out[:count]

    @numba.njit(cache=True)
    def _chase_labels(pred, virtual):
        """Chain roots of the Dijkstra predecessor forest, memoized."""
        k = pred.size
        labels = np.full(k, -1, dtype=np.int64)
        stack = np.empty(k, dtype=np.int64)
        for v in range(k):
            if labels[v] >= 0:
                continue
            top = 0
            x = v
            while True:
                p = pred[x]
                if p == virtual or p < 0:
                    root = x
                    break
                if labels[p] >= 0:
                    root = labels[p]
                    break
                stack[top] = x
                top += 1
                x = p
            labels[x] = root
            for i in range(top):
                labels[stack[i]] = root
        return labels

    def resolve_labels(dist, pred, virtual) -> np.ndarray:
        """JIT label resolver plugged into the AKPW rounds.

        Parameters
        ----------
        dist:
            Shifted distances (unused; signature compatibility).
        pred:
            Dijkstra predecessors.
        virtual:
            Index of the virtual source node.

        Returns
        -------
        numpy.ndarray
            ``int64`` cluster labels, identical to the claim loop.
        """
        return _chase_labels(np.asarray(pred, dtype=np.int64), int(virtual))

    @register_impl("lsst", "numba")
    def lsst(graph, *, method, seed) -> np.ndarray:
        """§3.1(a) backbone with the JIT label resolver and union core.

        Parameters
        ----------
        graph:
            Host graph.
        method:
            Backbone construction; the hooks only affect ``"akpw"``.
        seed:
            Randomness for the stochastic constructions.

        Returns
        -------
        numpy.ndarray
            Sorted canonical tree edge indices.
        """
        return low_stretch_tree(graph, method=method, seed=seed,
                                label_resolver=resolve_labels,
                                boruvka_core=boruvka_core)

    @register_impl("scoring", "numba")
    def scoring(graph, candidates, *, max_edges, mode) -> np.ndarray:
        """§3.7 step 6 selection via the compiled sequential loop.

        ``"endpoint"`` runs the JIT loop; other modes delegate to the
        ``vectorized`` implementation (which itself delegates the
        adjacency-marking ``"neighborhood"`` mode to ``reference``).

        Parameters
        ----------
        graph:
            Host graph (supplies endpoints).
        candidates:
            Canonical edge indices in decreasing-criticality order.
        max_edges:
            Cap on the number of selected edges.
        mode:
            ``"endpoint"``, ``"neighborhood"`` or ``"none"``.

        Returns
        -------
        numpy.ndarray
            Selected canonical edge indices, identical to
            ``reference``.

        Raises
        ------
        ValueError
            If ``max_edges`` is negative or ``mode`` is unknown.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        if max_edges is not None and max_edges < 0:
            raise ValueError(f"max_edges must be >= 0, got {max_edges}")
        if mode != "endpoint":
            return _vectorized_scoring(graph, candidates,
                                       max_edges=max_edges, mode=mode)
        cap = candidates.size if max_edges is None else int(max_edges)
        if cap == 0 or candidates.size == 0:
            return np.zeros(0, dtype=np.int64)
        return _greedy_endpoint(
            np.asarray(graph.u, dtype=np.int64),
            np.asarray(graph.v, dtype=np.int64),
            candidates, int(graph.n), cap,
        )
