"""``estimator`` kernel: σ² estimation backends (§3.6 / GRASS).

Two registered backends with deliberately different contracts:

``reference``
    The pre-existing solve-backed path: one generalized power
    iteration per densification round (``power_iterations`` Laplacian
    solves each), exactly the old ``EstimateStage`` body.  This is the
    bit-parity baseline — with ``estimator_backend="reference"``
    (the default) every pipeline output is unchanged.
``perturbation``
    The GRASS-style substitute ("Graph Spectral Sparsification
    Leveraging Scalable Spectral Perturbation Analysis"): instead of
    re-solving for λmax every round, it *brackets* the dominant
    generalized eigenvalue between two solve-free bounds and only
    spends power-iteration solves when the bracket can no longer
    drive the filter.

    - **Upper bound** — densification only ever *adds* edges, so
      ``L_P`` grows in the PSD order and ``λmax(L_P⁺ L_G)`` is
      monotone non-increasing across rounds (Courant–Fischer on the
      pencil).  The last power-iteration-confirmed value therefore
      stays a valid upper bound for every later round, for free.
    - **Lower bound** — the first-order perturbation estimate: the
      Rayleigh quotient of the previous round's dominant eigenvector
      (and the cached probe block) against the *updated* pencil,
      which is exact to first order in the edge perturbation and a
      guaranteed lower bound for any mean-free vector.

    While the upper bound sits above the certification line
    ``σ² · λmin`` the round cannot be *proven* converged, so the
    backend reports the upper bound (never certifying early — it
    over-estimates) and spends **zero** solves.  A true power
    iteration is run only (a) every ``estimator_refresh`` rounds to
    re-tighten the bracket, (b) whenever the upper bound falls to
    the line (certification must rest on a confirmed value), or
    (c) on the very first round.  Each confirmation re-anchors the
    cached eigenvector.

The perturbation backend is therefore contracted by *quality*, not
bit-parity: it must certify the same σ² target whenever reference
does, never certify looser than the declared band over reference's
value (:data:`SIGMA2_QUALITY_FACTOR`) nor densify past the declared
overhead (:data:`DENSITY_OVERHEAD_FACTOR`) — both asserted by the
property harness in ``tests/kernels/test_estimator_quality.py`` —
while the RNG stream, solve count and round structure may all differ.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import register_impl
from repro.spectral.extreme import generalized_power_iteration

__all__ = [
    "DENSITY_OVERHEAD_FACTOR",
    "SIGMA2_QUALITY_FACTOR",
    "estimator_reference",
    "estimator_perturbation",
    "rayleigh_bound",
]

#: Declared quality contract of the ``perturbation`` backend, asserted
#: by ``tests/kernels/test_estimator_quality.py``: (1) it converges
#: whenever the reference estimator converges, (2) the σ² it certifies
#: honours the configured target (``sigma2_estimate <= sigma2``), and
#: (3) the certified σ² never exceeds this multiple of the reference
#: pipeline's (``p <= SIGMA2_QUALITY_FACTOR · r``).  The band is
#: one-sided by construction: skip rounds substitute an *upper* bound
#: for λmax, so the filter threshold only tightens and the backend can
#: only land deeper below the target than reference, never above it.
SIGMA2_QUALITY_FACTOR = 3.0

#: The price of the one-sided band: overshooting the filter threshold
#: on skip rounds admits extra edges.  Clause (4) of the contract caps
#: the sparsifier at this multiple of the reference edge count
#: (corpus-measured overhead is <= 1.7x; the skipped solves buy a
#: >= 3x cut in the solve bill on the benchmark graphs).
DENSITY_OVERHEAD_FACTOR = 2.0


@register_impl("estimator", "reference")
def estimator_reference(state, *, rng, power_iterations, lambda_min,
                        sigma2, probes=None, cache=None,
                        refresh=3) -> tuple:
    """Solve-backed λmax estimate (the pre-kernel ``EstimateStage``).

    Parameters
    ----------
    state:
        Sparsifier state (supplies Laplacians and the warm solver).
    rng:
        The run's random generator (the starting vector draw).
    power_iterations:
        Generalized power-iteration steps (one solve each).
    lambda_min:
        Current λmin estimate (unused here; part of the backend ABI).
    sigma2:
        Similarity target (unused here; part of the backend ABI).
    probes:
        Cached probe block (unused here; part of the backend ABI).
    cache:
        Estimator scratch dict (unused here; part of the backend ABI).
    refresh:
        Embedding-refresh cadence (unused here; part of the backend
        ABI).

    Returns
    -------
    tuple
        ``(lambda_max, solves_spent)``.
    """
    solver = state.solver()
    value = generalized_power_iteration(
        state.host_laplacian,
        state.laplacian,
        solver,
        iterations=power_iterations,
        seed=rng,
    )
    return float(value), int(power_iterations)


def rayleigh_bound(LG, LP, vectors) -> float:
    """Best (largest) generalized Rayleigh quotient over given vectors.

    Each mean-free column ``h`` yields ``(hᵀ L_G h) / (hᵀ L_P h)``, a
    lower bound on ``λmax(L_P⁺ L_G)``; the maximum over all columns is
    the tightest bound the cached vectors can certify.  Columns with a
    non-positive denominator (numerically degenerate) are skipped.

    Parameters
    ----------
    LG:
        Host Laplacian.
    LP:
        Current sparsifier Laplacian.
    vectors:
        Iterable of ``(n, k)`` blocks of mean-free vectors.

    Returns
    -------
    float
        The largest valid quotient, or ``-inf`` when no column
        qualifies.
    """
    best = float("-inf")
    for block in vectors:
        if block is None:
            continue
        block = np.atleast_2d(np.asarray(block, dtype=np.float64))
        if block.shape[0] == 1:
            block = block.T
        num = np.einsum("ij,ij->j", block, LG @ block)
        den = np.einsum("ij,ij->j", block, LP @ block)
        valid = den > 0.0
        if np.any(valid):
            best = max(best, float(np.max(num[valid] / den[valid])))
    return best


@register_impl("estimator", "perturbation")
def estimator_perturbation(state, *, rng, power_iterations, lambda_min,
                           sigma2, probes=None, cache=None,
                           refresh=3) -> tuple:
    """GRASS-style bracketed λmax; spends solves only to confirm.

    Between confirmations the estimator returns the last confirmed
    λmax — a monotone-sound upper bound, since densification only adds
    edges to ``L_P`` — at zero solve cost, together with the
    first-order perturbation lower bound (the stale anchor/probe
    Rayleigh quotients against the updated pencil) recorded in the
    cache for diagnostics.  Reporting the upper bound keeps the Eq. 15
    filter threshold aggressive on skip rounds and can never certify
    convergence early.  A true power iteration runs on the first
    round, every ``refresh`` rounds, and whenever the upper bound
    reaches the certification line ``σ² · λmin`` (so certification
    always rests on a freshly confirmed value); each run re-anchors
    the cached eigenvector.

    Parameters
    ----------
    state:
        Sparsifier state (supplies Laplacians and the warm solver).
    rng:
        The run's random generator (consumed only on confirm rounds).
    power_iterations:
        Steps of each confirming power iteration.
    lambda_min:
        Current λmin estimate (positions the certification line).
    sigma2:
        Similarity target (positions the certification line).
    probes:
        Cached ``(n, r)`` propagated probe block, or ``None``.
    cache:
        Scratch dict persisting across rounds: the confirmed upper
        bound (``"lambda_max"``), rounds since the last confirmation
        (``"rounds_since_confirm"``), the anchor eigenvector
        (``"anchor"``) and the latest first-order lower bound
        (``"lower_bound"``).
    refresh:
        Maximum rounds between confirming power iterations.

    Returns
    -------
    tuple
        ``(lambda_max, solves_spent)`` — ``solves_spent`` is 0 on
        bracket rounds, ``power_iterations`` on confirm rounds.
    """
    cache = {} if cache is None else cache
    LG = state.host_laplacian
    LP = state.laplacian
    n = LG.shape[0]
    anchor = cache.get("anchor")
    if anchor is not None and anchor.shape[0] != n:
        anchor = None
    upper = cache.get("lambda_max")
    rounds = int(cache.get("rounds_since_confirm", 0))
    line = float(sigma2) * float(lambda_min)
    if upper is not None and rounds + 1 < int(refresh) and upper > line:
        cache["lower_bound"] = rayleigh_bound(LG, LP, (probes, anchor))
        cache["rounds_since_confirm"] = rounds + 1
        return float(upper), 0
    # Scheduled re-tightenings far from the decision line only need the
    # estimate's scale, so they run a truncated iteration; the first
    # round and any round whose tracked value reaches the line (the
    # only rounds that can certify) pay full accuracy.
    if upper is None or upper <= line:
        iterations = int(power_iterations)
    else:
        iterations = min(3, int(power_iterations))
    solver = state.solver()
    value, h = generalized_power_iteration(
        LG,
        LP,
        solver,
        iterations=iterations,
        seed=rng,
        return_vector=True,
    )
    cache["anchor"] = h
    cache["lambda_max"] = float(value)
    cache["lower_bound"] = float(value)
    cache["rounds_since_confirm"] = 0
    return float(value), int(iterations)
