"""Pluggable hot-path kernel backends for the sparsification pipeline.

The registry (:mod:`repro.kernels.registry`) maps each hot kernel of
the paper's filter loop — LSST construction, multi-RHS embedding,
off-tree filtering, similarity scoring — to named backend
implementations (``reference``, ``vectorized``, optional ``numba``),
all pinned bit-identical by the differential parity harness in
``tests/kernels``.  Stages dispatch through
:meth:`repro.core.context.PipelineContext.kernel`; the backend is the
``kernel_backend`` knob threaded through every public entry point.

The ``estimator`` kernel (σ² estimation) is the one exception to
bit-parity: its ``perturbation`` backend is an algorithmic substitute
for the solve-backed ``reference`` path, selected by the separate
``estimator_backend`` knob and contracted by σ² *quality* tolerance
instead (see :mod:`repro.kernels.estimator`).

Importing this package imports the backend modules, which registers
every implementation.
"""

from repro.kernels import registry  # noqa: F401
from repro.kernels import reference  # noqa: F401
from repro.kernels import vectorized  # noqa: F401
from repro.kernels import numba_backend  # noqa: F401
from repro.kernels import estimator  # noqa: F401
from repro.kernels.registry import (
    BACKENDS,
    ESTIMATOR_BACKENDS,
    HAS_NUMBA,
    KERNELS,
    Kernel,
    available_backends,
    kernel_impl,
    register_impl,
    resolve_backend,
    resolve_estimator_backend,
    run_kernel,
)

__all__ = [
    "BACKENDS",
    "ESTIMATOR_BACKENDS",
    "HAS_NUMBA",
    "KERNELS",
    "Kernel",
    "available_backends",
    "kernel_impl",
    "register_impl",
    "resolve_backend",
    "resolve_estimator_backend",
    "run_kernel",
]
