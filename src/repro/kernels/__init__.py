"""Pluggable hot-path kernel backends for the sparsification pipeline.

The registry (:mod:`repro.kernels.registry`) maps each hot kernel of
the paper's filter loop — LSST construction, multi-RHS embedding,
off-tree filtering, similarity scoring — to named backend
implementations (``reference``, ``vectorized``, optional ``numba``),
all pinned bit-identical by the differential parity harness in
``tests/kernels``.  Stages dispatch through
:meth:`repro.core.context.PipelineContext.kernel`; the backend is the
``kernel_backend`` knob threaded through every public entry point.

Importing this package imports the backend modules, which registers
every implementation.
"""

from repro.kernels import registry  # noqa: F401
from repro.kernels import reference  # noqa: F401
from repro.kernels import vectorized  # noqa: F401
from repro.kernels import numba_backend  # noqa: F401
from repro.kernels.registry import (
    BACKENDS,
    HAS_NUMBA,
    KERNELS,
    Kernel,
    available_backends,
    kernel_impl,
    register_impl,
    resolve_backend,
    run_kernel,
)

__all__ = [
    "BACKENDS",
    "HAS_NUMBA",
    "KERNELS",
    "Kernel",
    "available_backends",
    "kernel_impl",
    "register_impl",
    "resolve_backend",
    "run_kernel",
]
