"""Registry and dispatcher of the pipeline's hot-path kernels.

`PipelineProfile` (PR 5) shows the filter loop spends nearly all its
time in four stage kernels — LSST construction, the multi-RHS embedding
solve, off-tree heat filtering, and similarity scoring.  This module
gives each of them a *named backend*:

``reference``
    The pre-existing implementations, unchanged, now reached through
    the registry (the parity baseline).
``vectorized``
    Fully numpy-vectorized rewrites of the Python inner loops
    (:mod:`repro.kernels.vectorized`), bit-identical to ``reference``.
``numba``
    Optional JIT loops for the traversal-shaped kernels
    (:mod:`repro.kernels.numba_backend`); silently resolves to
    ``vectorized`` when numba is not installed.

A fifth kernel, ``estimator`` (§3.6 σ² estimation), carries its own
backend family (:data:`ESTIMATOR_BACKENDS`, knob
``estimator_backend``): ``reference`` is the solve-backed power
iteration, ``perturbation`` the GRASS-style first-order bound that
skips most solves.  It is contracted by a σ² *quality* tolerance
rather than bit-parity — see :mod:`repro.kernels.estimator`.

Each :class:`Kernel` couples a backend-independent *wiring* callable —
which gathers inputs from a :class:`~repro.core.context.PipelineContext`,
invokes the selected pure implementation and writes the outputs back —
with the per-backend implementations registered by the backend modules
via :func:`register_impl`.  Stages dispatch with ``ctx.kernel(name)``;
the ``repro lint`` contract rules understand that call through
:data:`repro.analysis.framework.KERNEL_DISPATCH_EFFECTS`, which a test
cross-checks against the ``reads``/``writes`` declared here.

Backend resolution is per-kernel: a backend that does not implement a
kernel falls back along ``numba -> vectorized -> reference``, so every
kernel always runs and ``reference`` is the universal floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs import get_metrics, get_tracer

__all__ = [
    "BACKENDS",
    "ESTIMATOR_BACKENDS",
    "HAS_NUMBA",
    "KERNELS",
    "Kernel",
    "available_backends",
    "kernel_impl",
    "register_impl",
    "resolve_backend",
    "resolve_estimator_backend",
    "run_kernel",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the common container state
    HAS_NUMBA = False

#: Every selectable backend name, in fallback order (``"auto"`` is
#: accepted by :func:`resolve_backend` but is not itself a backend).
BACKENDS = ("reference", "vectorized", "numba")

#: Backends selectable for the ``estimator`` kernel only.  Unlike the
#: bit-identical :data:`BACKENDS` families, ``"perturbation"`` is an
#: *algorithmic substitute* (GRASS-style first-order eigenvalue
#: perturbation bounds instead of per-round power-iteration solves)
#: contracted by a σ² quality tolerance, so it hangs off its own knob
#: (``estimator_backend``) and never rides along with
#: ``kernel_backend="auto"``.
ESTIMATOR_BACKENDS = ("reference", "perturbation")

#: Per-kernel fallback chain: a backend missing an implementation
#: delegates to the next cheaper one; ``reference`` is the floor.
_FALLBACK = {
    "numba": "vectorized",
    "vectorized": "reference",
    "perturbation": "reference",
}

#: ``(kernel name, backend name) -> pure implementation`` — populated
#: by the backend modules at import time via :func:`register_impl`.
_IMPLS: dict = {}


@dataclass(frozen=True)
class Kernel:
    """One hot-path kernel: contract metadata plus context wiring.

    Attributes
    ----------
    name:
        Registry key, also the ``ctx.kernel(name)`` dispatch token.
    paper:
        Paper section the kernel implements (documentation anchor).
    reads, writes:
        Context names the wiring reads and writes — the dataflow the
        ``repro lint`` stage-contract rules charge to a dispatching
        stage (cross-checked against
        :data:`repro.analysis.framework.KERNEL_DISPATCH_EFFECTS`).
    wiring:
        ``(ctx, impl) -> counters`` — gathers inputs from the context,
        runs the backend implementation, writes outputs back and
        returns the stage's profile counters.
    """

    name: str
    paper: str
    reads: tuple
    writes: tuple
    wiring: Callable


def register_impl(kernel: str, backend: str) -> Callable:
    """Decorator registering one backend implementation of a kernel.

    Parameters
    ----------
    kernel:
        Kernel name (must be a :data:`KERNELS` key).
    backend:
        Backend name (in :data:`BACKENDS`; the ``estimator`` kernel
        accepts :data:`ESTIMATOR_BACKENDS` instead).

    Returns
    -------
    Callable
        A decorator storing the function in the implementation table.

    Raises
    ------
    ValueError
        If the kernel or backend name is unknown, or the slot is
        already taken.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of "
                         f"{tuple(sorted(KERNELS))}")
    allowed = ESTIMATOR_BACKENDS if kernel == "estimator" else BACKENDS
    if backend not in allowed:
        raise ValueError(f"unknown backend {backend!r}; expected one of "
                         f"{allowed}")

    def decorate(fn: Callable) -> Callable:
        if (kernel, backend) in _IMPLS:
            raise ValueError(
                f"duplicate implementation for kernel {kernel!r} "
                f"backend {backend!r}"
            )
        _IMPLS[(kernel, backend)] = fn
        return fn

    return decorate


def resolve_backend(name: str) -> str:
    """Map a requested backend name to the one that will actually run.

    Parameters
    ----------
    name:
        ``"auto"``, or one of :data:`BACKENDS`.  ``"auto"`` selects
        ``"numba"`` when numba is importable and ``"vectorized"``
        otherwise; requesting ``"numba"`` without numba installed
        degrades to ``"vectorized"`` rather than failing.

    Returns
    -------
    str
        A concrete, runnable backend name.

    Raises
    ------
    ValueError
        If ``name`` is neither ``"auto"`` nor a known backend.
    """
    if name == "auto":
        return "numba" if HAS_NUMBA else "vectorized"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected 'auto' or one of "
            f"{BACKENDS}"
        )
    if name == "numba" and not HAS_NUMBA:
        return "vectorized"
    return name


def resolve_estimator_backend(name: str) -> str:
    """Map a requested estimator backend to the one that will run.

    Parameters
    ----------
    name:
        ``"auto"``, or one of :data:`ESTIMATOR_BACKENDS`.  ``"auto"``
        selects ``"perturbation"`` — the solve-avoiding GRASS-style
        estimator, always runnable (it needs no optional dependency).

    Returns
    -------
    str
        A concrete estimator backend name.

    Raises
    ------
    ValueError
        If ``name`` is neither ``"auto"`` nor a known estimator
        backend.
    """
    if name == "auto":
        return "perturbation"
    if name not in ESTIMATOR_BACKENDS:
        raise ValueError(
            f"unknown estimator backend {name!r}; expected 'auto' or one "
            f"of {ESTIMATOR_BACKENDS}"
        )
    return name


def available_backends() -> tuple:
    """The backends that can run in this environment.

    Returns
    -------
    tuple
        ``("reference", "vectorized")`` plus ``"numba"`` when numba is
        importable.
    """
    return tuple(b for b in BACKENDS if b != "numba" or HAS_NUMBA)


def kernel_impl(name: str, backend: str) -> Callable:
    """The implementation that a backend resolves to for one kernel.

    Parameters
    ----------
    name:
        Kernel name.
    backend:
        Requested backend (``"auto"`` accepted); walked down the
        fallback chain until an implementation is found.

    Returns
    -------
    Callable
        The pure kernel implementation.

    Raises
    ------
    ValueError
        If the kernel name is unknown.
    LookupError
        If no implementation exists along the whole fallback chain
        (impossible while ``reference`` registers every kernel).
    """
    return _resolve_impl(name, backend)[1]


def _resolve_impl(name: str, backend: str) -> tuple:
    """Resolve ``(concrete backend, implementation)`` for one kernel."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of "
                         f"{tuple(sorted(KERNELS))}")
    if name == "estimator":
        candidate: str | None = resolve_estimator_backend(backend)
    else:
        candidate = resolve_backend(backend)
    while candidate is not None:
        fn = _IMPLS.get((name, candidate))
        if fn is not None:
            return candidate, fn
        candidate = _FALLBACK.get(candidate)
    raise LookupError(f"no implementation registered for kernel {name!r}")


def run_kernel(ctx, name: str):
    """Dispatch one kernel against a pipeline context.

    Parameters
    ----------
    ctx:
        A :class:`~repro.core.context.PipelineContext`; its
        ``kernel_backend`` selects the implementation (the
        ``estimator`` kernel follows ``estimator_backend`` instead).
    name:
        Kernel name.

    Returns
    -------
    dict or None
        The wiring's profile counters.

    Raises
    ------
    ValueError
        If the kernel name is unknown.
    """
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of "
                         f"{tuple(sorted(KERNELS))}")
    kernel = KERNELS[name]
    request = (
        ctx.estimator_backend if name == "estimator" else ctx.kernel_backend
    )
    backend, impl = _resolve_impl(name, request)
    metrics = get_metrics()
    with get_tracer().span(
        f"kernel.{name}", category="kernel", backend=backend
    ) as span:
        counters = kernel.wiring(ctx, impl)
    metrics.counter(
        "repro_kernel_calls_total",
        "Kernel dispatches through the registry, by kernel and "
        "concrete backend.",
        labelnames=("kernel", "backend"),
    ).inc(kernel=name, backend=backend)
    metrics.histogram(
        "repro_kernel_seconds",
        "Wall-clock seconds per kernel dispatch, by kernel and "
        "concrete backend.",
        labelnames=("kernel", "backend"),
    ).observe(span.elapsed, kernel=name, backend=backend)
    return counters


def _wire_lsst(ctx, impl) -> dict:
    """Build the spanning-tree backbone onto ``ctx.tree_indices``."""
    ctx.tree_indices = impl(ctx.graph, method=ctx.tree_method, seed=ctx.rng)
    return {"edges": int(ctx.tree_indices.size)}


def _wire_embedding(ctx, impl) -> dict:
    """Score off-tree edges: ``ctx.off_tree`` and ``ctx.heats``.

    Fresh dispatches propagate the probe block through one batched
    multi-RHS solve per power step and cache the block on
    ``ctx.probes``.  When the estimator decided the cached block is
    still sharp enough (``ctx.reuse_embedding``), the round re-scores
    the shrunken off-tree set from that cache instead — zero solves
    and, because ``state.solver()`` is never touched, zero
    re-factorizations.
    """
    from repro.sparsify.edge_embedding import default_num_vectors, probe_heats

    state = ctx.state
    ctx.off_tree = np.flatnonzero(~state.edge_mask)
    if ctx.reuse_embedding and ctx.probes is not None:
        ctx.heats = probe_heats(ctx.graph, ctx.probes, ctx.off_tree)
        ctx.embedding_reused = True
        ctx.estimator_cache["rounds_since_embed"] = (
            int(ctx.estimator_cache.get("rounds_since_embed", 0)) + 1
        )
    else:
        ctx.heats, ctx.probes = impl(
            ctx.graph,
            state.solver(),
            ctx.off_tree,
            t=ctx.t,
            num_vectors=ctx.num_vectors,
            seed=ctx.rng,
            LG=state.host_laplacian,
        )
        ctx.embedding_reused = False
        ctx.estimator_cache["rounds_since_embed"] = 0
    probes = (
        ctx.num_vectors
        if ctx.num_vectors is not None
        else default_num_vectors(ctx.graph.n)
    )
    return {
        "off_tree": int(ctx.off_tree.size),
        "probe_vectors": int(probes),
        "reused": int(ctx.embedding_reused),
    }


def _wire_estimator(ctx, impl) -> dict:
    """Refresh λmax/λmin/σ² and decide the next embedding's reuse."""
    state = ctx.state
    ctx.lambda_min = state.lambda_min()
    lambda_max, solves = impl(
        state,
        rng=ctx.rng,
        power_iterations=ctx.power_iterations,
        lambda_min=ctx.lambda_min,
        sigma2=ctx.sigma2,
        probes=ctx.probes,
        cache=ctx.estimator_cache,
        refresh=ctx.estimator_refresh,
    )
    ctx.lambda_max = float(lambda_max)
    ctx.sigma2_estimate = ctx.lambda_max / ctx.lambda_min
    get_metrics().gauge(
        "repro_sigma2_estimate",
        "Relative condition number lambda_max/lambda_min after the "
        "latest estimate stage.",
    ).set(ctx.sigma2_estimate)
    if ctx.estimator_backend == "perturbation":
        rounds = int(ctx.estimator_cache.get("rounds_since_embed", 0))
        ctx.reuse_embedding = (
            ctx.probes is not None and rounds + 1 < ctx.estimator_refresh
        )
    else:
        ctx.reuse_embedding = False
    return {"solves": int(solves)}


def _wire_filtering(ctx, impl) -> dict:
    """θ_σ-threshold the heats into ``ctx.candidates``.

    ``lambda_min`` is refreshed from the state's cached degrees so the
    threshold always reflects the sparsifier as embedded (a no-op
    repeat in the batch cadence, the live value in the streaming drift
    cadence).
    """
    ctx.lambda_min = ctx.state.lambda_min()
    threshold, passing = impl(
        ctx.heats,
        sigma2=ctx.sigma2,
        lambda_min=ctx.lambda_min,
        lambda_max=ctx.lambda_max,
        t=ctx.t,
    )
    ctx.threshold = float(threshold)
    ctx.candidates = ctx.off_tree[passing]
    return {"candidates": int(ctx.candidates.size)}


def _wire_scoring(ctx, impl) -> dict:
    """Select dissimilar candidates and grow the sparsifier state."""
    ctx.added = impl(
        ctx.graph,
        ctx.candidates,
        max_edges=ctx.edge_cap(),
        mode=ctx.similarity_mode,
    )
    ctx.state.add_edges(ctx.added)
    return {"added": int(ctx.added.size)}


#: Every hot kernel, keyed by its ``ctx.kernel(name)`` dispatch token.
KERNELS = {
    "lsst": Kernel(
        name="lsst",
        paper="§3.1(a) spanning-tree backbone",
        reads=("graph", "rng", "tree_method"),
        writes=("tree_indices",),
        wiring=_wire_lsst,
    ),
    "embedding": Kernel(
        name="embedding",
        paper="§3.2 t-step Joule heats (Eqs. 6, 12)",
        reads=("state", "rng", "graph", "t", "num_vectors",
               "reuse_embedding", "probes", "estimator_cache"),
        writes=("off_tree", "heats", "probes", "embedding_reused",
                "estimator_cache"),
        wiring=_wire_embedding,
    ),
    "estimator": Kernel(
        name="estimator",
        paper="§3.6 extreme eigenvalue estimation (λmax power "
              "iteration / GRASS-style perturbation bound, λmin "
              "Eq. 18)",
        reads=("state", "rng", "power_iterations", "sigma2", "probes",
               "estimator_cache", "estimator_backend",
               "estimator_refresh"),
        writes=("lambda_max", "lambda_min", "sigma2_estimate",
                "reuse_embedding"),
        wiring=_wire_estimator,
    ),
    "filtering": Kernel(
        name="filtering",
        paper="§3.5 off-tree filtering with θ_σ (Eq. 15)",
        reads=("state", "off_tree", "heats", "lambda_max", "sigma2", "t"),
        writes=("threshold", "candidates", "lambda_min"),
        wiring=_wire_filtering,
    ),
    "scoring": Kernel(
        name="scoring",
        paper="§3.7 step 6 dissimilarity selection",
        reads=("state", "graph", "candidates", "similarity_mode",
               "max_edges_per_iteration"),
        writes=("added",),
        wiring=_wire_scoring,
    ),
}
