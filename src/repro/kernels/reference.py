"""``reference`` backend: the pre-kernel implementations, unchanged.

These are thin adapters over the original hot-path functions
(:mod:`repro.trees.lsst`, :mod:`repro.sparsify.edge_embedding`,
:mod:`repro.sparsify.filtering`, :mod:`repro.sparsify.edge_similarity`)
— exactly the code every pipeline ran before the kernel registry
existed.  The differential parity harness in ``tests/kernels`` pins
every other backend bit-identical to this one.

The sparsify modules are imported inside the function bodies:
``repro.sparsify``'s public modules are pipeline consumers, so a
module-level import here would close an import cycle through the
package ``__init__`` (the same idiom as ``repro.core.stages``).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import register_impl
from repro.trees.lsst import low_stretch_tree


@register_impl("lsst", "reference")
def lsst(graph, *, method, seed) -> np.ndarray:
    """§3.1(a): spanning-tree backbone via the original dispatcher.

    Parameters
    ----------
    graph:
        Host graph.
    method:
        Backbone construction (``"akpw"``/``"spt"``/``"maxw"``/
        ``"random"``).
    seed:
        Randomness for the stochastic constructions.

    Returns
    -------
    numpy.ndarray
        Sorted canonical tree edge indices.
    """
    return low_stretch_tree(graph, method=method, seed=seed)


@register_impl("embedding", "reference")
def embedding(graph, solver, off_tree, *, t, num_vectors, seed,
              LG) -> tuple:
    """§3.2: t-step Joule heats via the original embedding path.

    Parameters
    ----------
    graph:
        Host graph.
    solver:
        Callable applying the sparsifier's ``L_P⁺``.
    off_tree:
        Canonical indices of the off-tree edges to score.
    t, num_vectors, seed, LG:
        Power-iteration parameters (see
        :func:`repro.sparsify.edge_embedding.power_iterate`).

    Returns
    -------
    tuple
        ``(heats, H)`` — heat per off-tree edge aligned with
        ``off_tree``, plus the propagated ``(n, r)`` probe block (the
        wiring caches it for solve-free reuse rounds).
    """
    from repro.sparsify.edge_embedding import power_iterate, probe_heats

    H = power_iterate(graph, solver, t=t, num_vectors=num_vectors,
                      seed=seed, LG=LG)
    return probe_heats(graph, H, off_tree), H


@register_impl("filtering", "reference")
def filtering(heats, *, sigma2, lambda_min, lambda_max, t) -> tuple:
    """§3.5: θ_σ threshold plus passing candidate positions.

    Parameters
    ----------
    heats:
        Raw Joule heats of the candidate edges.
    sigma2:
        Similarity target σ².
    lambda_min, lambda_max:
        Extreme generalized eigenvalue estimates.
    t:
        Power-iteration steps used by the embedding.

    Returns
    -------
    tuple
        ``(threshold, passing)`` — θ_σ and the positions (into
        ``heats``) that pass, sorted by decreasing normalized heat.
    """
    from repro.sparsify.filtering import filter_edges, heat_threshold

    threshold = heat_threshold(sigma2, lambda_min, lambda_max, t=t)
    decision = filter_edges(heats, threshold)
    return decision.threshold, decision.passing


@register_impl("scoring", "reference")
def scoring(graph, candidates, *, max_edges, mode) -> np.ndarray:
    """§3.7 step 6: the original greedy dissimilarity selection.

    Parameters
    ----------
    graph:
        Host graph (supplies endpoints and adjacency).
    candidates:
        Canonical edge indices in decreasing-criticality order.
    max_edges:
        Cap on the number of selected edges.
    mode:
        ``"endpoint"``, ``"neighborhood"`` or ``"none"``.

    Returns
    -------
    numpy.ndarray
        Selected canonical edge indices in processing order.
    """
    from repro.sparsify.edge_similarity import select_dissimilar

    return select_dissimilar(graph, candidates, max_edges=max_edges,
                             mode=mode)
