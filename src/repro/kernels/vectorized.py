"""``vectorized`` backend: numpy rewrites of the hot inner loops.

Every implementation here is **bit-identical** to ``reference`` — the
differential parity harness in ``tests/kernels`` enforces it — while
replacing the per-element Python loops with whole-array work:

``scoring``
    The greedy endpoint-marking selection is a sequential recurrence
    (each decision depends on the marks of earlier selections).  It is
    resolved in *rounds*: an active edge is **definitely skipped** once
    both endpoints carry a mark from a definitely-selected earlier
    edge, and **definitely selected** when it is the earliest possible
    toucher of at least one of its endpoints (no earlier active or
    selected edge can mark that endpoint first).  Both rules are sound
    with respect to the sequential semantics, and the earliest active
    edge is always decided, so the rounds terminate with exactly the
    reference selection.  A positional cap is honoured by deciding
    windows of candidates and truncating, which cannot change the
    decisions of earlier positions.
``lsst``
    The AKPW label-claim loop (assigning every cluster to the root of
    its Dijkstra predecessor chain) becomes pointer doubling — an
    integer fixpoint, exact by construction.
``embedding``
    The batched multi-RHS power iteration is shared with ``reference``
    (identical RNG draws); the per-edge heat gather uses ``np.take``
    and an in-place subtraction, which reproduces ``H[u] - H[v]``
    bit-for-bit.
``filtering``
    Same floating-point operation sequence as ``reference`` (divide by
    max, compare, stable sort) without materializing the intermediate
    ``FilterDecision``.

The sparsify modules are imported inside function bodies to avoid the
documented import cycle through ``repro.sparsify.__init__``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import reference as _reference
from repro.kernels.registry import register_impl
from repro.trees.lsst import low_stretch_tree


def resolve_labels(dist: np.ndarray, pred: np.ndarray,
                   virtual: int) -> np.ndarray:
    """Pointer-doubling replacement for the AKPW label-claim loop.

    The reference loop walks clusters in increasing shifted distance and
    copies each cluster's label from its Dijkstra predecessor — i.e.
    every cluster ends up labelled by the root of its predecessor
    chain.  Chasing the chains by repeated squaring computes the same
    roots without any ordering, so the result is exactly the reference
    labelling (``dist`` is accepted for signature compatibility only).

    Parameters
    ----------
    dist:
        Shifted shortest-path distances (unused).
    pred:
        Dijkstra predecessors; the virtual source and negative entries
        terminate chains.
    virtual:
        Index of the virtual source node.

    Returns
    -------
    numpy.ndarray
        ``int64`` cluster labels, identical to the sequential claim
        loop.
    """
    parent = np.arange(pred.size, dtype=np.int64)
    follow = (pred >= 0) & (pred != virtual)
    parent[follow] = pred[follow]
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return grand
        parent = grand


@register_impl("lsst", "vectorized")
def lsst(graph, *, method, seed) -> np.ndarray:
    """§3.1(a) backbone with the pointer-doubling label resolver.

    Parameters
    ----------
    graph:
        Host graph.
    method:
        Backbone construction (``"akpw"``/``"spt"``/``"maxw"``/
        ``"random"``); the resolver only affects ``"akpw"``.
    seed:
        Randomness for the stochastic constructions.

    Returns
    -------
    numpy.ndarray
        Sorted canonical tree edge indices.
    """
    return low_stretch_tree(graph, method=method, seed=seed,
                            label_resolver=resolve_labels)


@register_impl("embedding", "vectorized")
def embedding(graph, solver, off_tree, *, t, num_vectors, seed,
              LG) -> tuple:
    """§3.2 Joule heats with a ``np.take``-based edge gather.

    Parameters
    ----------
    graph:
        Host graph.
    solver:
        Callable applying the sparsifier's ``L_P⁺``.
    off_tree:
        Canonical indices of the off-tree edges to score.
    t, num_vectors, seed, LG:
        Power-iteration parameters (see
        :func:`repro.sparsify.edge_embedding.power_iterate`).

    Returns
    -------
    tuple
        ``(heats, H)`` — heat per off-tree edge aligned with
        ``off_tree`` (bit-identical to ``reference``), plus the
        propagated ``(n, r)`` probe block for reuse caching.
    """
    from repro.sparsify.edge_embedding import power_iterate

    H = power_iterate(graph, solver, t=t, num_vectors=num_vectors,
                      seed=seed, LG=LG)
    u = np.take(graph.u, off_tree)
    v = np.take(graph.v, off_tree)
    w = np.take(graph.w, off_tree)
    diffs = np.take(H, u, axis=0)
    diffs -= np.take(H, v, axis=0)
    return w * np.einsum("ij,ij->i", diffs, diffs), H


@register_impl("filtering", "vectorized")
def filtering(heats, *, sigma2, lambda_min, lambda_max, t) -> tuple:
    """§3.5 filtering without the intermediate decision object.

    Parameters
    ----------
    heats:
        Raw Joule heats of the candidate edges.
    sigma2:
        Similarity target σ².
    lambda_min, lambda_max:
        Extreme generalized eigenvalue estimates.
    t:
        Power-iteration steps used by the embedding.

    Returns
    -------
    tuple
        ``(threshold, passing)`` — exactly the reference pair: θ_σ and
        the positions that pass, sorted by decreasing normalized heat.
    """
    from repro.sparsify.filtering import heat_threshold

    threshold = heat_threshold(sigma2, lambda_min, lambda_max, t=t)
    heats = np.asarray(heats, dtype=np.float64)
    if threshold >= 1.0 or heats.size == 0:
        return float(threshold), np.zeros(0, dtype=np.int64)
    maximum = float(heats.max())
    if maximum <= 0.0:
        # All-zero heats can never meet a positive θ_σ (the reference
        # normalizer returns zeros and nothing passes).
        return float(threshold), np.zeros(0, dtype=np.int64)
    norm = heats / maximum
    passing = np.flatnonzero(norm >= threshold)
    passing = passing[np.argsort(-norm[passing], kind="stable")]
    return float(threshold), passing


def _first_touch(scratch: np.ndarray, kp: np.ndarray, kq: np.ndarray,
                 kpos: np.ndarray) -> np.ndarray:
    """First active position touching each node of the round.

    Endpoint/position pairs are interleaved so positions are globally
    non-decreasing, then assigned in reverse — duplicate-index fancy
    assignment keeps the *last* write, i.e. the smallest position.
    Only entries for nodes in ``kp``/``kq`` are defined; the rest of
    ``scratch`` is stale by design (never read).
    """
    nodes = np.empty(2 * kp.size, dtype=np.int64)
    nodes[0::2] = kp
    nodes[1::2] = kq
    pos = np.empty(2 * kp.size, dtype=np.int64)
    pos[0::2] = kpos
    pos[1::2] = kpos
    scratch[nodes[::-1]] = pos[::-1]
    return scratch


def _decide_window(p: np.ndarray, q: np.ndarray, positions: np.ndarray,
                   mark_pos: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Fully decide one window of candidates; returns selected rows.

    ``mark_pos`` maps each node to the smallest candidate position of a
    definitely-selected edge touching it (the sentinel ``m`` when
    untouched) and is updated in place as selections become definite.
    """
    active = np.arange(p.size)
    sel = np.zeros(p.size, dtype=bool)
    while active.size:
        ap = p[active]
        aq = q[active]
        apos = positions[active]
        # Definitely skipped: both endpoints marked by earlier
        # definite selections (exactly the sequential skip rule).
        skip = (mark_pos[ap] < apos) & (mark_pos[aq] < apos)
        keep = active[~skip]
        if keep.size == 0:
            break
        kp = p[keep]
        kq = q[keep]
        kpos = positions[keep]
        touch = _first_touch(scratch, kp, kq, kpos)
        fp = np.minimum(touch[kp], mark_pos[kp])
        fq = np.minimum(touch[kq], mark_pos[kq])
        # Definitely selected: earliest possible toucher of at least
        # one endpoint — no earlier edge can mark it first, so the
        # sequential pass finds that endpoint unmarked.
        chosen = (fp == kpos) | (fq == kpos)
        new = keep[chosen]
        sel[new] = True
        npos = positions[new]
        nodes = np.empty(2 * new.size, dtype=np.int64)
        nodes[0::2] = p[new]
        nodes[1::2] = q[new]
        pos2 = np.empty(2 * new.size, dtype=np.int64)
        pos2[0::2] = npos
        pos2[1::2] = npos
        nodes = nodes[::-1]
        pos2 = pos2[::-1]
        mark_pos[nodes] = np.minimum(mark_pos[nodes], pos2)
        active = keep[~chosen]
    return sel


@register_impl("scoring", "vectorized")
def scoring(graph, candidates, *, max_edges, mode) -> np.ndarray:
    """§3.7 step 6 greedy dissimilarity selection, in rounds.

    ``"endpoint"`` mode runs the round-based exact replay of the
    sequential greedy loop described in the module docstring;
    ``"neighborhood"`` (adjacency marking is irregular and rarely used)
    delegates to ``reference``; ``"none"`` is a plain slice.

    Parameters
    ----------
    graph:
        Host graph (supplies endpoints).
    candidates:
        Canonical edge indices in decreasing-criticality order.
    max_edges:
        Cap on the number of selected edges.
    mode:
        ``"endpoint"``, ``"neighborhood"`` or ``"none"``.

    Returns
    -------
    numpy.ndarray
        Selected canonical edge indices, identical to ``reference``.

    Raises
    ------
    ValueError
        If ``max_edges`` is negative or ``mode`` is unknown.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if max_edges is not None and max_edges < 0:
        raise ValueError(f"max_edges must be >= 0, got {max_edges}")
    if mode == "none":
        if max_edges is not None:
            return candidates[:max_edges]
        return candidates
    if mode == "neighborhood":
        return _reference.scoring(graph, candidates, max_edges=max_edges,
                                  mode=mode)
    if mode != "endpoint":
        raise ValueError(f"unknown similarity mode {mode!r}")
    m = candidates.size
    cap = m if max_edges is None else int(max_edges)
    if cap == 0 or m == 0:
        return np.zeros(0, dtype=np.int64)
    mark_pos = np.full(graph.n, m, dtype=np.int64)
    scratch = np.empty(graph.n, dtype=np.int64)
    window = m if cap >= m else max(4 * cap, 1024)
    parts = []
    total = 0
    start = 0
    while start < m and total < cap:
        stop = min(start + window, m)
        chunk = candidates[start:stop]
        positions = np.arange(start, stop, dtype=np.int64)
        sel = _decide_window(
            np.take(graph.u, chunk).astype(np.int64, copy=False),
            np.take(graph.v, chunk).astype(np.int64, copy=False),
            positions, mark_pos, scratch,
        )
        chosen = chunk[sel]
        take = min(cap - total, chosen.size)
        parts.append(chosen[:take])
        total += take
        start = stop
    if parts:
        return np.concatenate(parts).astype(np.int64, copy=False)
    return np.zeros(0, dtype=np.int64)
